"""Throughput benchmark: scalar WFA engine vs the batched NumPy engine.

Times the scalar per-pair loop (``WavefrontAligner``) against
``repro.core.wfa_batch.align_batch`` over the same pair list at batch
sizes 1, 64 and 512, in both score-only mode (the engine proper — the
headline number) and full-CIGAR mode (which adds the per-pair traceback
both engines share).  Every vector result is verified identical to the
scalar result — score, CIGAR and counters — before any time is reported.

The default workload is 500 bp reads at 10% divergence under edit
distance: enough score steps that per-score work dominates fixed
overheads for both engines.  At batch size 1 the vector engine mostly
measures NumPy call overhead and is expected to lose; the batch sizes
the PIM simulator and serve layer dispatch are where it wins.

Run it directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py
    PYTHONPATH=src python benchmarks/bench_batch_engine.py \
        --batch-sizes 1,64,512 --length 500 --error-rate 0.10

Writes a machine-readable record to
``benchmarks/out/BENCH_batch_engine.json``.
"""

from __future__ import annotations

import argparse
import importlib.util
import time
from pathlib import Path


def _conftest():
    """The benchmarks-local conftest, by path (pytest shadows the name)."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", Path(__file__).resolve().parent / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.core.wfa_batch import align_batch
from repro.data.generator import ReadPairGenerator


def make_penalties(metric: str):
    if metric == "edit":
        return EditPenalties()
    if metric == "affine":
        return AffinePenalties(4, 6, 2)
    raise ValueError(f"unknown metric {metric!r}")


def timed(fn, repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def check_identical(scalar, vector, score_only: bool) -> None:
    for i, (s, v) in enumerate(zip(scalar, vector)):
        if s.score != v.score:
            raise AssertionError(f"pair {i}: score {s.score} != {v.score}")
        if not score_only and str(s.cigar) != str(v.cigar):
            raise AssertionError(f"pair {i}: CIGAR mismatch")
        if s.counters != v.counters:
            raise AssertionError(f"pair {i}: counter mismatch")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--batch-sizes", default="1,64,512", help="comma-separated batch sizes"
    )
    ap.add_argument("--length", type=int, default=500, help="read length (bp)")
    ap.add_argument("--error-rate", type=float, default=0.10)
    ap.add_argument("--metric", choices=("edit", "affine"), default="edit")
    ap.add_argument("--seed", type=int, default=11)
    ap.add_argument(
        "--repeats", type=int, default=2, help="best-of-N timing repeats"
    )
    ap.add_argument(
        "--out", default=None, help="output JSON path (default benchmarks/out/)"
    )
    args = ap.parse_args(argv)

    batch_sizes = [int(b) for b in args.batch_sizes.split(",")]
    penalties = make_penalties(args.metric)
    gen = ReadPairGenerator(
        length=args.length, error_rate=args.error_rate, seed=args.seed
    )
    pool = gen.pairs(max(batch_sizes))
    aligner = WavefrontAligner(penalties=penalties)

    print(
        f"workload: {args.metric} distance, {args.length} bp reads at "
        f"E={args.error_rate:.0%}, best of {args.repeats}"
    )

    rows = []
    headline = None
    for batch in batch_sizes:
        pairs = [(rp.pattern, rp.text) for rp in pool[:batch]]
        for mode in ("score_only", "full"):
            score_only = mode == "score_only"
            scalar_s, scalar_res = timed(
                lambda: [
                    aligner.align(p, t, score_only=score_only) for p, t in pairs
                ],
                args.repeats,
            )
            vector_s, vector_res = timed(
                lambda: align_batch(pairs, penalties, score_only=score_only),
                args.repeats,
            )
            check_identical(scalar_res, vector_res, score_only)
            speedup = scalar_s / vector_s
            rows.append(
                {
                    "batch": batch,
                    "mode": mode,
                    "scalar_seconds": scalar_s,
                    "vector_seconds": vector_s,
                    "scalar_pairs_per_second": batch / scalar_s,
                    "vector_pairs_per_second": batch / vector_s,
                    "speedup": speedup,
                    "identical": True,
                }
            )
            print(
                f"  batch={batch:<4d} {mode:<10s} scalar {scalar_s:8.3f} s "
                f"({batch / scalar_s:9.1f} pairs/s)   vector {vector_s:8.3f} s "
                f"({batch / vector_s:9.1f} pairs/s)   speedup x{speedup:.2f}"
            )
            if batch == max(batch_sizes) and score_only:
                headline = speedup

    print(
        f"headline: x{headline:.2f} pairs/sec over the scalar engine at "
        f"batch size {max(batch_sizes)} (score-only)"
    )

    write_artifact = _conftest().write_artifact

    config = {
        "metric": args.metric,
        "length": args.length,
        "error_rate": args.error_rate,
        "seed": args.seed,
        "repeats": args.repeats,
        "batch_sizes": batch_sizes,
    }
    out_path = write_artifact(
        "BENCH_batch_engine",
        config,
        {"headline_speedup": headline, "runs": rows},
        seed=args.seed,
        path=args.out,
    )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
