"""Ext. C — future work: scaling to longer read lengths (experiment index).

Holds total bases fixed while lengthening reads; WFA work per base grows
with the absolute per-read error count (score^2 term), so throughput in
bases/s should degrade gracefully with length at fixed error *rate*.
"""

from conftest import emit

from repro.experiments.sweeps import read_length_sweep


def test_read_length_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: read_length_sweep(
            lengths=(100, 200, 500, 1000), sample_pairs_per_dpu=6
        ),
        rounds=1,
        iterations=1,
    )
    emit("read_length_sweep", result.report())

    pairs_per_s = result.series("pairs_per_s")
    # longer reads = fewer pairs/s, monotonically
    assert all(a > b for a, b in zip(pairs_per_s, pairs_per_s[1:]))
    kernel = result.series("kernel_s")
    assert all(k > 0 for k in kernel)
