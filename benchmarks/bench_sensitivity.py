"""Ext. J — calibration sensitivity of the headline ratios.

Perturbs each key model constant by 1.5x in both directions and checks
that (a) the qualitative conclusion — PIM beats the 56-thread CPU —
survives every perturbation, and (b) the kernel-side result is
insensitive to the DMA constants (it is instruction-throughput-bound at
16 tasklets), while the end-to-end ratio moves with the two anchored
quantities (transfer bandwidth, CPU effective bandwidth) as the
calibration note predicts.
"""

from conftest import emit

from repro.experiments.sensitivity import sensitivity_analysis


def test_sensitivity(benchmark):
    result = benchmark.pedantic(
        lambda: sensitivity_analysis(factor=1.5, cpu_sample=150, pim_sample=32),
        rounds=1,
        iterations=1,
    )
    emit("sensitivity", result.report())

    assert result.all_pim_wins()
    by_label = {p.label: p for p in result.points}
    base = result.baseline
    # kernel speedup ~unchanged under DMA perturbations (instr-bound)
    for label in ("DMA streaming rate x1.5", "DMA streaming rate /1.5"):
        assert abs(by_label[label].kernel_speedup / base.kernel_speedup - 1) < 0.15
    # total speedup tracks transfer bandwidth strongly
    up = by_label["host transfer bandwidth x1.5"].total_speedup
    down = by_label["host transfer bandwidth /1.5"].total_speedup
    assert up > base.total_speedup > down
