"""Ext. L — pre-alignment filtering in front of the PIM system.

Filter-then-align vs align-everything across contamination levels
(fractions of unrelated candidate pairs, as a seed-and-extend mapper
produces).  The filter pays off once enough junk exists to offset its
host cost; on a clean workload it is pure overhead — the bench prints
the crossover.
"""

import random

from conftest import emit

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPair, ReadPairGenerator, random_sequence
from repro.perf.report import format_table
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem
from repro.pipeline import FilterAlignPipeline

PEN = AffinePenalties(4, 6, 2)
TOTAL = 96


def workload(junk_fraction: float, seed: int = 5) -> list[ReadPair]:
    rng = random.Random(seed)
    n_junk = round(TOTAL * junk_fraction)
    gen = ReadPairGenerator(length=100, error_rate=0.02, seed=seed)
    pairs = gen.pairs(TOTAL - n_junk)
    pairs += [
        ReadPair(pattern=random_sequence(100, rng), text=random_sequence(100, rng))
        for _ in range(n_junk)
    ]
    rng.shuffle(pairs)
    return pairs


def build_system() -> PimSystem:
    cfg = PimSystemConfig(num_dpus=8, num_ranks=1, tasklets=4, num_simulated_dpus=8)
    # junk pairs must not crash the no-filter baseline: budget for the
    # worst realistic random-pair distance (~0.55-0.7 per base), with
    # chunked staging so the huge score bound still fits WRAM
    kc = KernelConfig(
        penalties=PEN, max_read_len=100, max_edits=80, staging_chunk_bytes=512
    )
    return PimSystem(cfg, kc)


def test_filter_crossover(benchmark):
    def run():
        rows = []
        for junk in (0.0, 0.25, 0.5, 0.75):
            pairs = workload(junk)
            baseline = build_system().align(pairs, collect_results=False)
            piped = FilterAlignPipeline(build_system(), max_edits=2).run(pairs)
            rows.append(
                (
                    f"{junk:.0%} junk",
                    f"{baseline.total_seconds * 1e3:.2f} ms",
                    f"{piped.total_seconds * 1e3:.2f} ms",
                    f"{piped.filter_stats.acceptance_rate:.0%}",
                    f"{baseline.total_seconds / piped.total_seconds:.2f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "filter_pipeline",
        format_table(
            ["workload", "align-all", "filter+align", "accepted", "speedup"],
            rows,
            title=f"pre-alignment filtering ({TOTAL} candidate pairs, filter k=2)",
        ),
    )
    # at heavy contamination the filter must win end-to-end
    final_speedup = float(rows[-1][-1].rstrip("x"))
    assert final_speedup > 1.0
    # filter keeps everything on the clean workload
    assert rows[0][3] == "100%"
