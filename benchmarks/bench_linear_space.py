"""Linear-space traceback: Myers-Miller vs full-matrix Gotoh (wall clock).

Both produce optimal gap-affine alignments with CIGARs; Myers-Miller
holds O(m) cost rows instead of O(n*m) matrices.  The wall-clock gap on
moderate inputs quantifies the recursion's constant factor; the memory
gap is why it exists.
"""

import random

from repro.baselines.gotoh import gotoh_align
from repro.baselines.linear_space import myers_miller_align
from repro.core.penalties import AffinePenalties

PEN = AffinePenalties(4, 6, 2)


def make_pair(length: int, seed: int) -> tuple[str, str]:
    rng = random.Random(seed)
    p = "".join(rng.choice("ACGT") for _ in range(length))
    t = list(p)
    for _ in range(round(0.04 * length)):
        op = rng.randrange(3)
        if op == 0 and t:
            t[rng.randrange(len(t))] = rng.choice("ACGT")
        elif op == 1:
            t.insert(rng.randrange(len(t) + 1), rng.choice("ACGT"))
        elif t:
            del t[rng.randrange(len(t))]
    return p, "".join(t)


PAIRS = [make_pair(300, s) for s in range(4)]


def test_myers_miller_wallclock(benchmark):
    results = benchmark(lambda: [myers_miller_align(p, t, PEN) for p, t in PAIRS])
    for (p, t), (score, cigar) in zip(PAIRS, results):
        cigar.validate(p, t)


def test_gotoh_full_matrix_wallclock(benchmark):
    results = benchmark(lambda: [gotoh_align(p, t, PEN) for p, t in PAIRS])
    assert all(score >= 0 for score, _ in results)


def test_scores_identical():
    for p, t in PAIRS:
        assert myers_miller_align(p, t, PEN)[0] == gotoh_align(p, t, PEN)[0]
