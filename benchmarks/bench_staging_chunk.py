"""Ext. I — metadata staging granularity on long reads (experiment index).

The paper's whole-wavefront staging sizes WRAM buffers by the score
bound, which collapses tasklet admission on long reads (the obstacle
behind its "longer read lengths" future work).  Chunked staging keeps
WRAM constant per tasklet and recovers the thread count.
"""

from conftest import emit

from repro.experiments.sweeps import staging_chunk_ablation


def test_staging_granularity(benchmark):
    result = benchmark.pedantic(
        lambda: staging_chunk_ablation(
            length=1000, error_rate=0.02, sample_pairs_per_dpu=4
        ),
        rounds=1,
        iterations=1,
    )
    emit("staging_chunk", result.report())

    rows = {r.label: r.values for r in result.rows}
    # chunked staging admits strictly more tasklets than whole-wavefront...
    assert rows["256B"]["tasklets"] > rows["whole"]["tasklets"]
    # ...and converts that into net kernel time despite extra DMA setups.
    assert rows["256B"]["kernel_s"] < rows["whole"]["kernel_s"]
