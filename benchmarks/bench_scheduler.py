"""Ext. K — multi-round scheduling: serialized vs double-buffered.

When a workload exceeds one MRAM fill, the host runs multiple
distribute/launch/gather rounds.  Overlapping round i+1's transfers with
round i's kernel (double buffering) hides the smaller of the two phases
— the natural optimization the paper's Total-vs-Kernel gap invites.
"""

from conftest import emit

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.perf.report import format_table
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem


def build_system() -> PimSystem:
    cfg = PimSystemConfig(num_dpus=8, num_ranks=1, tasklets=8, num_simulated_dpus=1)
    kc = KernelConfig(penalties=AffinePenalties(), max_read_len=100, max_edits=2)
    return PimSystem(cfg, kc)


def test_overlapped_scheduling(benchmark):
    pairs = ReadPairGenerator(length=100, error_rate=0.02, seed=9).pairs(240)

    def run():
        serial = BatchScheduler(build_system(), overlapped=False).run(
            pairs, pairs_per_round=48
        )
        overlap = BatchScheduler(build_system(), overlapped=True).run(
            pairs, pairs_per_round=48
        )
        return serial, overlap

    serial, overlap = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            "serialized",
            f"{serial.schedule.rounds}",
            f"{serial.kernel_seconds:.4g}",
            f"{serial.transfer_seconds:.4g}",
            f"{serial.total_seconds:.4g}",
            f"{serial.throughput():,.0f}",
        ),
        (
            "double-buffered",
            f"{overlap.schedule.rounds}",
            f"{overlap.kernel_seconds:.4g}",
            f"{overlap.transfer_seconds:.4g}",
            f"{overlap.total_seconds:.4g}",
            f"{overlap.throughput():,.0f}",
        ),
    ]
    emit(
        "scheduler",
        format_table(
            ["schedule", "rounds", "kernel_s", "transfer_s", "total_s", "pairs/s"],
            rows,
            title="multi-round scheduling (240 pairs, 5 rounds of 48)",
        ),
    )

    assert overlap.total_seconds < serial.total_seconds
    # the hidden phase is bounded by per-round max(kernel, transfer)
    assert overlap.total_seconds >= max(
        overlap.kernel_seconds, overlap.transfer_seconds
    )
