"""Ext. G — system-size scaling (experiment index).

Kernel time scales down linearly with the number of DPUs (the workload is
embarrassingly parallel) while host transfer time does not — so
end-to-end speedup saturates, which is why the paper reports Kernel and
Total separately.
"""

from conftest import emit

from repro.experiments.sweeps import dpu_count_sweep


def test_dpu_count_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: dpu_count_sweep(
            dpu_counts=(64, 256, 640, 1280, 2560), sample_pairs_per_dpu=32
        ),
        rounds=1,
        iterations=1,
    )
    emit("dpu_count_sweep", result.report())

    kernel = result.series("kernel_s")
    total = result.series("total_s")
    # kernel scales ~linearly with DPUs (40x DPUs -> >10x kernel gain)
    assert kernel[0] / kernel[-1] > 10.0
    # total saturates well below the kernel gain (transfer floor)
    assert total[0] / total[-1] < 0.5 * kernel[0] / kernel[-1]
