"""Abl. A — the paper's allocator design choice (experiment index).

"Since a DPU's 64KB WRAM is shared among all threads, we cannot fit the
WFA metadata for all threads in WRAM without sacrificing the number of
threads.  Hence, to unleash the maximum threads, we store the metadata in
MRAM and transfer it to/from WRAM on demand."

This bench quantifies exactly that: max admissible tasklets and resulting
kernel time under each metadata placement policy.
"""

from conftest import emit

from repro.experiments.sweeps import allocator_policy_ablation


def test_allocator_policy(benchmark):
    result = benchmark.pedantic(
        lambda: allocator_policy_ablation(error_rate=0.04, sample_pairs_per_dpu=32),
        rounds=1,
        iterations=1,
    )
    emit("allocator_policy", result.report())

    values = {r.label: r.values for r in result.rows}
    assert values["mram"]["max_tasklets"] == 24  # "unleash the maximum threads"
    assert values["wram"]["max_tasklets"] <= 6  # "sacrificing the number of threads"
    assert values["mram"]["kernel_s"] < values["wram"]["kernel_s"]
