"""Shared helpers for the benchmark harness.

Every benchmark regenerates one row of DESIGN.md's experiment index.  The
rendered tables/series are printed (visible with ``pytest -s``) and also
written to ``benchmarks/out/<name>.txt`` so the regeneration artifacts
survive the run regardless of output capture.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
