"""Shared helpers for the benchmark harness.

Every benchmark regenerates one row of DESIGN.md's experiment index.  The
rendered tables/series are printed (visible with ``pytest -s``) and also
written to ``benchmarks/out/<name>.txt`` so the regeneration artifacts
survive the run regardless of output capture.

Machine-readable benchmark artifacts go through :func:`write_artifact`,
which stamps the shared ``repro.bench.artifact/v1`` envelope (schema id,
seed, config fingerprint) so downstream tooling — and the perf ledger in
``repro.obs.bench`` — can tell which configuration produced a file
without parsing benchmark-specific fields.
"""

from __future__ import annotations

import json
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: envelope stamped onto every machine-readable benchmark artifact.
ARTIFACT_SCHEMA = "repro.bench.artifact/v1"


def emit(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


def write_artifact(name: str, config: dict, body: dict, seed=None, path=None) -> Path:
    """Write a benchmark artifact JSON in the shared envelope.

    ``config`` is the benchmark's outcome-determining knobs (fingerprinted
    with the same canonical-JSON sha256 the perf ledger uses); ``body``
    is the benchmark-specific payload; ``seed`` is surfaced top-level so
    a reader never has to guess which config key held it.  Defaults to
    ``benchmarks/out/<name>.json``; pass ``path`` to override.
    """
    from repro.obs.bench import config_fingerprint

    doc = {
        "schema": ARTIFACT_SCHEMA,
        "benchmark": name,
        "seed": seed,
        "config": config,
        "config_fingerprint": config_fingerprint(config),
        **body,
    }
    if path is None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.json"
    else:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
