"""Heuristic ablation: exact WFA vs WFA-Adapt vs static band (host side).

Quantifies the work reduction (wavefront cells) and the accuracy cost of
the reduction heuristics across error rates — the algorithmic trade the
WFA paper introduces and this reproduction implements in
`repro.core.heuristics`.
"""

from conftest import emit

from repro.core.aligner import WavefrontAligner
from repro.core.heuristics import AdaptiveReduction, StaticBand
from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.perf.report import format_table

PEN = AffinePenalties(4, 6, 2)


def run_variant(pairs, heuristic):
    aligner = WavefrontAligner(PEN, heuristic=heuristic)
    cells = 0
    scores = []
    for p in pairs:
        r = aligner.align(p.pattern, p.text)
        cells += r.counters.cells_computed
        scores.append(r.score)
    return cells, scores


def test_heuristic_tradeoffs(benchmark):
    def full_run():
        out = {}
        for rate in (0.02, 0.10):
            pairs = ReadPairGenerator(length=200, error_rate=rate, seed=5).pairs(30)
            exact_cells, exact_scores = run_variant(pairs, None)
            variants = {"exact": (exact_cells, exact_scores)}
            variants["adaptive"] = run_variant(pairs, AdaptiveReduction())
            variants["static-band-20"] = run_variant(pairs, StaticBand(20, 20))
            out[rate] = variants
        return out

    results = benchmark.pedantic(full_run, rounds=1, iterations=1)

    rows = []
    for rate, variants in results.items():
        exact_cells, exact_scores = variants["exact"]
        for name, (cells, scores) in variants.items():
            mismatches = sum(1 for a, b in zip(scores, exact_scores) if a != b)
            rows.append(
                (
                    f"E={rate:.0%} {name}",
                    f"{cells:,}",
                    f"{exact_cells / cells:.2f}x",
                    f"{mismatches}/{len(scores)}",
                )
            )
    emit(
        "heuristics",
        format_table(
            ["variant", "cells", "work reduction", "score deviations"],
            rows,
            title="heuristic ablation (200bp reads, 30 pairs per point)",
        ),
    )

    # At the dataset's own error rate the heuristics stay exact and save
    # work at the higher rate.
    low = results[0.02]
    assert low["adaptive"][1] == low["exact"][1]
    high = results[0.10]
    assert high["adaptive"][0] < high["exact"][0]