"""Fig. 1 — the paper's headline figure (experiment index: Fig. 1, Obs. 2).

Regenerates both panels of "Time for aligning 5 million read pairs using
WFA": CPU bars at 1..56 threads, PIM Kernel and PIM Total, for E in
{2%, 4%}, plus the paper-vs-measured speedup block.
"""

from conftest import emit

from repro.experiments.fig1 import Fig1Config, run_fig1
from repro.perf.calibration import PAPER_TARGETS


def test_fig1_full(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig1(
            Fig1Config(
                cpu_sample_pairs=300,
                pim_sample_pairs_per_dpu=64,
                num_simulated_dpus=2,
            )
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig1", result.report())

    # Shape assertions: who wins, by roughly what factor.
    p2, p4 = result.panel(0.02), result.panel(0.04)
    assert p2.total_speedup > 1.0 and p4.total_speedup > 1.0
    assert 0.5 < p2.total_speedup / PAPER_TARGETS.total_speedup_e2 < 2.0
    assert 0.5 < p4.total_speedup / PAPER_TARGETS.total_speedup_e4 < 2.0
    assert 0.5 < p2.kernel_speedup / PAPER_TARGETS.kernel_speedup_e2 < 2.0
    assert 0.5 < p4.kernel_speedup / PAPER_TARGETS.kernel_speedup_e4 < 2.0
    assert p2.kernel_speedup > p4.kernel_speedup  # crossover direction
