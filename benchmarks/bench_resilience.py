"""Ext. R — resilience: circuit breaker vs retry-only under a dead DPU.

One DPU in the fleet is permanently dead.  A retry-only scheduler pays
the full retry tax (watchdog + backoff + requeue) every round, forever.
With the fleet-health ledger attached, the dead DPU's circuit breaker
opens after ``failure_threshold`` observed failures and later rounds
simply route around it — the modeled run gets *faster* despite running
on fewer DPUs, because recovery overhead dwarfs the lost capacity.

The acceptance number is the modeled ``total_seconds`` delta; results
are asserted byte-identical either way (quarantine never changes the
answers, only where and when they are computed).  Besides the rendered
table, the run writes a machine-readable artifact in the shared
``repro.bench.artifact/v1`` envelope (see ``conftest.write_artifact``).
"""

import importlib.util
import warnings
from pathlib import Path

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import DegradedCapacity
from repro.perf.report import format_table
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan, RetryPolicy
from repro.pim.health import FleetHealth, HealthPolicy
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem

NUM_DPUS = 8
DEAD_DPU = 3
NUM_PAIRS = 480
PAIRS_PER_ROUND = 96
LENGTH = 64
SEED = 11


def _conftest():
    """The benchmarks-local conftest, by path (pytest shadows the name)."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", Path(__file__).resolve().parent / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def build_system(length: int = LENGTH) -> PimSystem:
    cfg = PimSystemConfig(
        num_dpus=NUM_DPUS, num_ranks=1, tasklets=8, num_simulated_dpus=NUM_DPUS
    )
    kc = KernelConfig(penalties=AffinePenalties(), max_read_len=length, max_edits=3)
    return PimSystem(cfg, kc)


def flat(run):
    out, start = [], 0
    for rnd, size in zip(run.per_round, run.schedule.round_sizes()):
        out.extend((i + start, s, str(c)) for i, s, c in rnd.results)
        start += size
    return sorted(out)


def run_resilience(
    num_pairs: int = NUM_PAIRS,
    pairs_per_round: int = PAIRS_PER_ROUND,
    length: int = LENGTH,
    seed: int = SEED,
):
    """Both runs of the drill: (retry_only, with_breaker, health)."""
    pairs = ReadPairGenerator(length=length, error_rate=0.02, seed=seed).pairs(
        num_pairs
    )
    plan = FaultPlan(deaths=(DpuDeath(dpu_id=DEAD_DPU),))
    policy = RetryPolicy(max_attempts=2, backoff_base_s=2e-3)
    retry_only = BatchScheduler(build_system(length)).run(
        pairs,
        pairs_per_round=pairs_per_round,
        collect_results=True,
        fault_plan=plan,
        retry_policy=policy,
    )
    health = FleetHealth(
        NUM_DPUS,
        policy=HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedCapacity)
        with_breaker = BatchScheduler(build_system(length)).run(
            pairs,
            pairs_per_round=pairs_per_round,
            collect_results=True,
            fault_plan=plan,
            retry_policy=policy,
            health=health,
        )
    return retry_only, with_breaker, health


def write_resilience_artifact(
    retry_only,
    with_breaker,
    health,
    *,
    num_pairs: int = NUM_PAIRS,
    pairs_per_round: int = PAIRS_PER_ROUND,
    length: int = LENGTH,
    seed: int = SEED,
    path=None,
) -> Path:
    """The drill's machine-readable artifact, in the shared envelope."""
    config = {
        "num_dpus": NUM_DPUS,
        "dead_dpu": DEAD_DPU,
        "num_pairs": num_pairs,
        "pairs_per_round": pairs_per_round,
        "length": length,
        "seed": seed,
    }
    body = {
        "retry_only_seconds": retry_only.total_seconds,
        "breaker_seconds": with_breaker.total_seconds,
        "delta_seconds": retry_only.total_seconds - with_breaker.total_seconds,
        "retry_only_recovery_seconds": retry_only.recovery_seconds,
        "breaker_recovery_seconds": with_breaker.recovery_seconds,
        "faults_seen": retry_only.recovery.faults_seen,
        "dead_dpu_state": health.states()[DEAD_DPU],
        "identical": flat(with_breaker) == flat(retry_only),
    }
    return _conftest().write_artifact(
        "BENCH_resilience", config, body, seed=seed, path=path
    )


def test_breaker_vs_retry_only(benchmark):
    retry_only, with_breaker, health = benchmark.pedantic(
        run_resilience, rounds=1, iterations=1
    )

    rows = []
    for label, run_ in (("retry-only", retry_only), ("breaker", with_breaker)):
        rows.append(
            (
                label,
                f"{run_.total_seconds * 1e3:.3f}",
                f"{run_.recovery_seconds * 1e3:.3f}",
                str(run_.recovery.faults_seen),
            )
        )
    delta = retry_only.total_seconds - with_breaker.total_seconds
    rows.append(
        (
            "delta",
            f"{delta * 1e3:.3f}",
            f"{(retry_only.recovery_seconds - with_breaker.recovery_seconds) * 1e3:.3f}",
            "-",
        )
    )
    _conftest().emit(
        "resilience",
        format_table(
            ["scheduler", "total_ms", "recovery_ms", "faults_seen"], rows
        ),
    )
    write_resilience_artifact(retry_only, with_breaker, health)

    assert health.states()[DEAD_DPU] == "open"
    assert flat(with_breaker) == flat(retry_only)
    assert with_breaker.recovery_seconds < retry_only.recovery_seconds
    assert with_breaker.total_seconds < retry_only.total_seconds
