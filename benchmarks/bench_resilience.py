"""Ext. R — resilience: circuit breaker vs retry-only under a dead DPU.

One DPU in the fleet is permanently dead.  A retry-only scheduler pays
the full retry tax (watchdog + backoff + requeue) every round, forever.
With the fleet-health ledger attached, the dead DPU's circuit breaker
opens after ``failure_threshold`` observed failures and later rounds
simply route around it — the modeled run gets *faster* despite running
on fewer DPUs, because recovery overhead dwarfs the lost capacity.

The acceptance number is the modeled ``total_seconds`` delta; results
are asserted byte-identical either way (quarantine never changes the
answers, only where and when they are computed).
"""

import warnings

from conftest import emit

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import DegradedCapacity
from repro.perf.report import format_table
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan, RetryPolicy
from repro.pim.health import FleetHealth, HealthPolicy
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem

NUM_DPUS = 8
DEAD_DPU = 3


def build_system() -> PimSystem:
    cfg = PimSystemConfig(
        num_dpus=NUM_DPUS, num_ranks=1, tasklets=8, num_simulated_dpus=NUM_DPUS
    )
    kc = KernelConfig(penalties=AffinePenalties(), max_read_len=64, max_edits=3)
    return PimSystem(cfg, kc)


def flat(run):
    out, start = [], 0
    for rnd, size in zip(run.per_round, run.schedule.round_sizes()):
        out.extend((i + start, s, str(c)) for i, s, c in rnd.results)
        start += size
    return sorted(out)


def test_breaker_vs_retry_only(benchmark):
    pairs = ReadPairGenerator(length=64, error_rate=0.02, seed=11).pairs(480)
    plan = FaultPlan(deaths=(DpuDeath(dpu_id=DEAD_DPU),))
    policy = RetryPolicy(max_attempts=2, backoff_base_s=2e-3)

    def run():
        retry_only = BatchScheduler(build_system()).run(
            pairs,
            pairs_per_round=96,
            collect_results=True,
            fault_plan=plan,
            retry_policy=policy,
        )
        health = FleetHealth(
            NUM_DPUS,
            policy=HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            with_breaker = BatchScheduler(build_system()).run(
                pairs,
                pairs_per_round=96,
                collect_results=True,
                fault_plan=plan,
                retry_policy=policy,
                health=health,
            )
        return retry_only, with_breaker, health

    retry_only, with_breaker, health = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = []
    for label, run_ in (("retry-only", retry_only), ("breaker", with_breaker)):
        rows.append(
            (
                label,
                f"{run_.total_seconds * 1e3:.3f}",
                f"{run_.recovery_seconds * 1e3:.3f}",
                str(run_.recovery.faults_seen),
            )
        )
    delta = retry_only.total_seconds - with_breaker.total_seconds
    rows.append(
        (
            "delta",
            f"{delta * 1e3:.3f}",
            f"{(retry_only.recovery_seconds - with_breaker.recovery_seconds) * 1e3:.3f}",
            "-",
        )
    )
    emit(
        "resilience",
        format_table(
            ["scheduler", "total_ms", "recovery_ms", "faults_seen"], rows
        ),
    )

    assert health.states()[DEAD_DPU] == "open"
    assert flat(with_breaker) == flat(retry_only)
    assert with_breaker.recovery_seconds < retry_only.recovery_seconds
    assert with_breaker.total_seconds < retry_only.total_seconds
