"""Ext. H — energy-to-solution, CPU vs PIM (experiment index).

The paper reports throughput; energy is the standard companion PIM
metric.  Busy-power model over the Fig. 1 operating points (provenance
in repro/perf/energy.py).
"""

from conftest import emit

from repro.experiments.fig1 import Fig1Config, run_fig1
from repro.perf.energy import EnergyModel
from repro.perf.report import format_table


def test_energy_comparison(benchmark):
    fig1 = benchmark.pedantic(
        lambda: run_fig1(
            Fig1Config(
                cpu_sample_pairs=200,
                pim_sample_pairs_per_dpu=48,
                num_simulated_dpus=1,
            )
        ),
        rounds=1,
        iterations=1,
    )
    model = EnergyModel()
    rows = []
    gains = {}
    for panel in fig1.panels:
        cpu56 = panel.cpu_curve[-1]
        cpu_e = model.cpu_energy(cpu56)
        pim_e = model.pim_energy(panel.pim)
        gain = model.efficiency_gain(cpu56, panel.pim, panel.spec.num_pairs)
        gains[panel.error_rate] = gain
        rows.append(
            (
                f"E={panel.error_rate:.0%}",
                f"{cpu_e.total_joules:.1f} J",
                f"{pim_e.total_joules:.1f} J",
                f"{cpu_e.pairs_per_joule(panel.spec.num_pairs):,.0f}",
                f"{pim_e.pairs_per_joule(panel.spec.num_pairs):,.0f}",
                f"{gain:.1f}x",
            )
        )
    emit(
        "energy",
        format_table(
            [
                "threshold",
                "CPU-56T energy",
                "PIM energy",
                "CPU pairs/J",
                "PIM pairs/J",
                "PIM gain",
            ],
            rows,
            title="energy to align 5M pairs (busy-power model)",
        ),
    )
    # PIM should clearly win on energy at both thresholds, comparably to
    # (or better than) its time advantage.
    for panel in fig1.panels:
        assert gains[panel.error_rate] > 2.0
        assert gains[panel.error_rate] > 0.8 * panel.total_speedup
