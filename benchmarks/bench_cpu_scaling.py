"""Obs. 1 — CPU performance does not scale with threads (experiment index).

Regenerates the CPU side of Fig. 1 as a thread-scaling series and asserts
its shape: near-linear to ~8 threads, flat beyond — "its performance is
limited by memory bandwidth".
"""

from conftest import emit

from repro.cpu.config import xeon_gold_5120_dual
from repro.cpu.model import CpuModel
from repro.cpu.runner import CpuRunner
from repro.data.datasets import paper_dataset
from repro.perf.report import format_series, format_table

THREADS = [1, 2, 4, 8, 16, 32, 56]


def run_curve(error_rate: float, sample: int = 300):
    spec = paper_dataset(error_rate)
    measurement = CpuRunner().measure(spec.sample(sample))
    model = CpuModel(xeon_gold_5120_dual())
    return model.scaling_curve(
        measurement.counters,
        measurement.pairs,
        measurement.seq_bytes_per_pair,
        spec.num_pairs,
        THREADS,
    )


def test_cpu_thread_scaling(benchmark):
    curves = benchmark.pedantic(
        lambda: {e: run_curve(e) for e in (0.02, 0.04)}, rounds=1, iterations=1
    )
    blocks = []
    for e, curve in curves.items():
        blocks.append(
            format_series(
                f"cpu_seconds_E{e:.0%}",
                [b.threads for b in curve],
                [b.seconds for b in curve],
            )
        )
        blocks.append(
            format_table(
                ["threads", "seconds", "bound", "speedup_vs_1T"],
                [
                    (
                        b.threads,
                        f"{b.seconds:.4g}",
                        b.bound,
                        f"{curve[0].seconds / b.seconds:.2f}x",
                    )
                    for b in curve
                ],
                title=f"CPU scaling E={e:.0%} (5M pairs, 2x Xeon Gold 5120)",
            )
        )
    emit("cpu_scaling", "\n\n".join(blocks))

    for curve in curves.values():
        times = [b.seconds for b in curve]
        assert times[0] / times[3] > 4.0  # near-linear 1 -> 8
        assert times[4] / times[6] < 1.5  # flat 16 -> 56
        assert curve[-1].bound == "memory"  # the paper's explanation
