"""Abl. B — DPU kernel time vs tasklet count (experiment index).

The revolving 11-cycle pipeline means a DPU only reaches one instruction
per cycle with >= 11 active tasklets (PrIM); kernel time should fall
steeply to ~11 tasklets and flatten after.
"""

from conftest import emit

from repro.experiments.sweeps import tasklet_sweep


def test_tasklet_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: tasklet_sweep(
            error_rate=0.02,
            tasklet_counts=(1, 2, 4, 8, 11, 16, 20, 24),
            sample_pairs_per_dpu=48,
        ),
        rounds=1,
        iterations=1,
    )
    emit("tasklet_sweep", result.report())

    ks = result.series("kernel_s")
    # steep improvement up to the pipeline depth...
    assert ks[0] / ks[4] > 5.0  # 1T -> 11T
    # ...then saturation (within 10% from 11 to 24 tasklets)
    assert max(ks[4:]) / min(ks[4:]) < 1.35
