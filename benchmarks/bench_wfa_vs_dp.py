"""Ctx. F — WFA vs classical DP on the host (experiment index).

Real wall-clock pytest-benchmark timings of our functional
implementations on identical workloads.  This is the only bench that
measures Python execution speed rather than modeled platform time; the
*relative* ordering (WFA does far less work than full DP on low-error
pairs) is the property being demonstrated.
"""

import pytest

from repro.baselines.banded import band_for_error_rate, banded_gotoh_score
from repro.baselines.bitparallel import myers_edit_distance
from repro.baselines.gotoh import gotoh_score
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.data.generator import ReadPairGenerator

PEN = AffinePenalties(4, 6, 2)
PAIRS = ReadPairGenerator(length=100, error_rate=0.02, seed=42).pairs(20)


@pytest.fixture(scope="module")
def aligner():
    return WavefrontAligner(PEN)


def test_wfa_affine_score_only(benchmark, aligner):
    def run():
        return [aligner.align(p.pattern, p.text, score_only=True).score for p in PAIRS]

    scores = benchmark(run)
    assert all(s >= 0 for s in scores)


def test_wfa_affine_with_traceback(benchmark, aligner):
    def run():
        return [aligner.align(p.pattern, p.text).score for p in PAIRS]

    scores = benchmark(run)
    assert all(s >= 0 for s in scores)


def test_wfa_adaptive(benchmark):
    adaptive = WavefrontAligner(PEN, heuristic="adaptive")
    benchmark(lambda: [adaptive.align(p.pattern, p.text).score for p in PAIRS])


def test_wfa_edit_metric(benchmark):
    edit = WavefrontAligner(EditPenalties())
    benchmark(
        lambda: [edit.align(p.pattern, p.text, score_only=True).score for p in PAIRS]
    )


def test_gotoh_full_dp(benchmark):
    benchmark(lambda: [gotoh_score(p.pattern, p.text, PEN) for p in PAIRS])


def test_banded_dp(benchmark):
    band = band_for_error_rate(100, 0.02)
    benchmark(
        lambda: [banded_gotoh_score(p.pattern, p.text, PEN, band) for p in PAIRS]
    )


def test_myers_bitparallel_edit(benchmark):
    benchmark(lambda: [myers_edit_distance(p.pattern, p.text) for p in PAIRS])


def test_consistency_across_entrants():
    """All exact affine entrants agree on every pair (not timed)."""
    aligner = WavefrontAligner(PEN)
    band = band_for_error_rate(100, 0.02)
    for p in PAIRS:
        wfa = aligner.align(p.pattern, p.text, score_only=True).score
        assert wfa == gotoh_score(p.pattern, p.text, PEN)
        assert wfa == banded_gotoh_score(p.pattern, p.text, PEN, band)
