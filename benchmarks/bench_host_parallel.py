"""Wall-clock benchmark: sequential vs host-parallel DPU simulation.

Times ``PimSystem.align`` over the same workload class as
``bench_pim_simulator.py`` (100 bp reads, E = 2%, affine penalties) at a
fidelity-oriented DPU count (32 simulated DPUs by default) for a sweep
of worker counts, and verifies that every parallel run reproduces the
sequential results exactly.

Run it directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_host_parallel.py
    PYTHONPATH=src python benchmarks/bench_host_parallel.py \
        --dpus 32 --pairs-per-dpu 8 --workers 1,2,4

Writes a machine-readable record to ``benchmarks/out/host_parallel.json``.
Meaningful speedups require real cores: on a single-CPU host the pool
only adds overhead, and the report says so.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import time
from pathlib import Path


def _conftest():
    """The benchmarks-local conftest, by path (pytest shadows the name)."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", Path(__file__).resolve().parent / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem

OUT_DIR = Path(__file__).parent / "out"


def build_system(num_dpus: int, tasklets: int) -> PimSystem:
    cfg = PimSystemConfig(
        num_dpus=num_dpus,
        num_ranks=1,
        tasklets=tasklets,
        num_simulated_dpus=num_dpus,
    )
    kc = KernelConfig(
        penalties=AffinePenalties(4, 6, 2), max_read_len=100, max_edits=2
    )
    return PimSystem(cfg, kc)


def signature(res) -> list:
    return [(i, s, str(c)) for i, s, c in res.results]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--dpus", type=int, default=32, help="simulated DPUs")
    ap.add_argument("--pairs-per-dpu", type=int, default=8)
    ap.add_argument("--tasklets", type=int, default=8)
    ap.add_argument(
        "--workers", default="1,2,4", help="comma-separated worker counts"
    )
    args = ap.parse_args(argv)

    worker_counts = [int(w) for w in args.workers.split(",")]
    num_pairs = args.dpus * args.pairs_per_dpu
    pairs = ReadPairGenerator(length=100, error_rate=0.02, seed=1).pairs(num_pairs)

    print(
        f"workload: {num_pairs} pairs over {args.dpus} simulated DPUs, "
        f"{args.tasklets} tasklets, host has {os.cpu_count()} CPU(s)"
    )

    rows = []
    baseline_sig = None
    baseline_s = None
    for workers in worker_counts:
        system = build_system(args.dpus, args.tasklets)
        t0 = time.perf_counter()
        res = system.align(pairs, collect_results=True, workers=workers)
        elapsed = time.perf_counter() - t0
        sig = signature(res)
        if baseline_sig is None:
            baseline_sig, baseline_s = sig, elapsed
        elif sig != baseline_sig:
            raise AssertionError(
                f"workers={workers} produced different results than sequential"
            )
        speedup = baseline_s / elapsed
        rows.append(
            {
                "workers": workers,
                "seconds": elapsed,
                "speedup_vs_first": speedup,
                "pairs_per_second": num_pairs / elapsed,
            }
        )
        print(
            f"  workers={workers:<3d} {elapsed:8.3f} s   "
            f"{num_pairs / elapsed:9.1f} pairs/s   "
            f"speedup x{speedup:.2f}"
        )

    cpus = os.cpu_count() or 1
    if cpus < max(worker_counts):
        print(
            f"note: only {cpus} CPU(s) visible — worker counts above that "
            "cannot speed up and mostly measure pool overhead"
        )

    out_path = _conftest().write_artifact(
        "host_parallel",
        {
            "dpus": args.dpus,
            "pairs_per_dpu": args.pairs_per_dpu,
            "tasklets": args.tasklets,
            "workers": worker_counts,
            "seed": 1,
        },
        {
            "num_pairs": num_pairs,
            "cpu_count": cpus,
            "results_identical": True,
            "runs": rows,
        },
        seed=1,
    )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
