"""Ext. E — future work: other alignment algorithms on PIM (experiment index).

WFA vs classical banded Gotoh DP, both as score-only DPU kernels on the
same simulated hardware.  On low-error reads WFA computes an order of
magnitude fewer cells — the reason it is the state of the art that the
paper ports.
"""

from conftest import emit

from repro.experiments.sweeps import algorithm_comparison
from repro.perf.report import format_table


def test_wfa_vs_banded_on_dpu(benchmark):
    results = benchmark.pedantic(
        lambda: {e: algorithm_comparison(error_rate=e, sample_pairs_per_dpu=24)
                 for e in (0.02, 0.04)},
        rounds=1,
        iterations=1,
    )
    blocks = [res.report() for res in results.values()]
    rows = []
    for e, res in results.items():
        vals = {r.label.split("(")[0]: r.values for r in res.rows}
        rows.append(
            (
                f"E={e:.0%}",
                f"{vals['banded']['kernel_s'] / vals['wfa']['kernel_s']:.2f}x",
            )
        )
    blocks.append(format_table(["threshold", "wfa_speedup_over_banded"], rows))
    emit("algo_comparison", "\n\n".join(blocks))

    for res in results.values():
        vals = {r.label.split("(")[0]: r.values for r in res.rows}
        assert vals["wfa"]["kernel_s"] < vals["banded"]["kernel_s"]
