"""Ext. D — future work: higher edit-distance thresholds (experiment index).

WFA's work grows ~quadratically with the alignment score, so kernel time
should grow super-linearly in E while the transfer time stays flat —
shrinking PIM's kernel-only advantage exactly as Fig. 1's E=2% vs 4%
columns already hint (37.4x -> 12.3x).
"""

from conftest import emit

from repro.experiments.sweeps import error_rate_sweep


def test_error_rate_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: error_rate_sweep(
            rates=(0.01, 0.02, 0.04, 0.06, 0.08, 0.10), sample_pairs_per_dpu=12
        ),
        rounds=1,
        iterations=1,
    )
    emit("error_rate_sweep", result.report())

    kernel = result.series("kernel_s")
    total = result.series("total_s")
    # kernel time strictly increases with E
    assert all(a < b for a, b in zip(kernel, kernel[1:]))
    # super-linear growth: E 2% -> 8% (4x) costs more than 4x kernel time
    assert kernel[4] / kernel[1] > 4.0
    # transfers flat: total grows much slower than kernel
    assert total[-1] / total[0] < kernel[-1] / kernel[0]
