"""Tests for dataset specs and the paper presets."""

import pytest

from repro.data.datasets import (
    PAPER_NUM_PAIRS,
    PAPER_READ_LENGTH,
    DatasetSpec,
    paper_dataset,
)
from repro.errors import DataError


class TestPaperPreset:
    def test_constants(self):
        assert PAPER_NUM_PAIRS == 5_000_000
        assert PAPER_READ_LENGTH == 100

    def test_paper_dataset(self):
        spec = paper_dataset(0.02)
        assert spec.num_pairs == 5_000_000
        assert spec.length == 100
        assert spec.edit_budget == 2
        assert paper_dataset(0.04).edit_budget == 4

    def test_describe(self):
        d = paper_dataset(0.02).describe()
        assert "5,000,000" in d
        assert "2%" in d


class TestDatasetSpec:
    def test_sample_is_prefix_of_stream(self):
        spec = DatasetSpec(num_pairs=100, length=30, error_rate=0.05, seed=3)
        sample = spec.sample(10)
        stream = list(spec.stream())
        assert stream[:10] == sample
        assert len(stream) == 100

    def test_sample_clamps_to_num_pairs(self):
        spec = DatasetSpec(num_pairs=5, length=10, error_rate=0.0)
        assert len(spec.sample(50)) == 5

    def test_scaled_keeps_distribution(self):
        spec = DatasetSpec(num_pairs=1000, length=30, error_rate=0.05, seed=3)
        mini = spec.scaled(10)
        assert mini.num_pairs == 10
        assert mini.length == spec.length
        assert mini.sample(10) == spec.sample(10)

    def test_determinism(self):
        a = DatasetSpec(num_pairs=10, length=50, error_rate=0.02, seed=7)
        b = DatasetSpec(num_pairs=10, length=50, error_rate=0.02, seed=7)
        assert a.sample(10) == b.sample(10)

    def test_negative_pairs_rejected(self):
        with pytest.raises(DataError):
            DatasetSpec(num_pairs=-1, length=10, error_rate=0.0)

    def test_edit_budget_rounding(self):
        assert DatasetSpec(1, 100, 0.025).edit_budget == 2  # banker's rounding of 2.5
        assert DatasetSpec(1, 100, 0.035).edit_budget == 4
        assert DatasetSpec(1, 150, 0.02).edit_budget == 3
