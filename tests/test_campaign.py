"""The ablation x chaos campaign runner (see docs/campaigns.md).

Pins the contracts the evidence report is trusted for: the standard
vocabulary is wide enough for the acceptance grid, reports are
byte-identical across reruns and worker counts, a torn report resumes
to the byte-identical file (Hypothesis drives arbitrary truncation
points and worker counts through a stateful machine), and the marquee
ablation deltas — breaker off regresses modeled recovery, journal off
pays a full modeled restart, requeue off abandons pairs — actually show
up in the report.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.errors import ConfigError, QaError
from repro.pim.ablation import (
    STANDARD_ABLATION_NAMES,
    STANDARD_ABLATIONS,
    AblationConfig,
    ablation_by_name,
)
from repro.qa.campaign import (
    CAMPAIGN_SCHEMA,
    STANDARD_GRID,
    CampaignConfig,
    FaultGridPoint,
    build_fault_plan,
    build_net_plan,
    cell_name,
    grid_point_by_name,
    run_campaign,
    validate_campaign_report,
)

#: a small grid that still exercises faults, sharding, crash/resume and
#: multi-round scheduling — the shape every fast test here reuses.
SMALL = CampaignConfig(
    pairs=16,
    pairs_per_round=4,
    serve_requests=0,
    ablations=(
        AblationConfig(name="baseline"),
        AblationConfig(name="requeue_off", requeue=False),
        AblationConfig(name="journal_off", journal=False),
    ),
    grid=(
        FaultGridPoint(name="dead_dpu", dead_dpus=1),
        FaultGridPoint(name="crash_dead", dead_dpus=1, crash=True),
    ),
)


@pytest.fixture(scope="module")
def small_report(tmp_path_factory):
    path = tmp_path_factory.mktemp("campaign") / "small.jsonl"
    report = run_campaign(SMALL, report_path=path)
    return report, path


@pytest.fixture(scope="module")
def full_report(tmp_path_factory):
    """The default campaign — the acceptance-criteria grid."""
    path = tmp_path_factory.mktemp("campaign") / "full.jsonl"
    report = run_campaign(CampaignConfig(), report_path=path)
    return report, path


class TestVocabulary:
    def test_standard_axes_are_wide_enough(self):
        # the acceptance grid: >= 6 distinct ablations, >= 3 fault points
        assert len(STANDARD_ABLATIONS) >= 6
        assert len(STANDARD_GRID) >= 3
        assert len({a.name for a in STANDARD_ABLATIONS}) == len(
            STANDARD_ABLATIONS
        )
        assert len({g.name for g in STANDARD_GRID}) == len(STANDARD_GRID)
        assert STANDARD_ABLATIONS[0].all_on

    def test_every_feature_has_an_off_ablation(self):
        flags = ("breaker", "requeue", "journal", "fallback", "cache")
        for flag in flags:
            assert any(
                not getattr(a, flag) for a in STANDARD_ABLATIONS
            ), f"no standard ablation turns {flag} off"
        assert any(a.engine == "scalar" for a in STANDARD_ABLATIONS)
        assert any(a.shards == 1 for a in STANDARD_ABLATIONS)

    def test_lookup_by_name(self):
        assert ablation_by_name("breaker_off").breaker is False
        assert grid_point_by_name("crash_dead").crash is True
        with pytest.raises(ConfigError):
            ablation_by_name("bogus")
        with pytest.raises(ConfigError):
            grid_point_by_name("bogus")
        assert "breaker_off" in STANDARD_ABLATION_NAMES

    def test_fault_plans_are_seeded_and_disjoint(self):
        point = grid_point_by_name("dead_dpu")
        a = build_fault_plan(point, 4, seed=42, point_index=1)
        b = build_fault_plan(point, 4, seed=42, point_index=1)
        assert a.to_dict() == b.to_dict()
        assert build_fault_plan(grid_point_by_name("calm"), 4, 42, 0) is None
        crowded = FaultGridPoint(name="crowded", dead_dpus=2, stalled_dpus=2)
        with pytest.raises(ConfigError, match="healthy spare"):
            build_fault_plan(crowded, 4, 42, 0)

    def test_config_roundtrip(self):
        cfg = CampaignConfig()
        assert CampaignConfig.from_dict(cfg.to_dict()) == cfg
        with pytest.raises(QaError, match="baseline"):
            CampaignConfig(
                ablations=(ablation_by_name("breaker_off"),)
            ).validate()


class TestDeterminism:
    def test_byte_identical_across_workers_and_reruns(self, tmp_path):
        paths = {}
        for label, workers in (("seq", 0), ("par", 2), ("again", 0)):
            paths[label] = tmp_path / f"{label}.jsonl"
            run_campaign(SMALL, workers=workers, report_path=paths[label])
        seq = paths["seq"].read_bytes()
        assert paths["par"].read_bytes() == seq
        assert paths["again"].read_bytes() == seq

    def test_cells_are_complete_ordered_and_unique(self, small_report):
        report, path = small_report
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert records[0]["schema"] == CAMPAIGN_SCHEMA
        cells = [r["cell"] for r in records if r["record"] == "cell"]
        assert cells == SMALL.cell_names()
        assert len(cells) == len(set(cells))
        validate_campaign_report(path)

    def test_report_object_matches_file(self, small_report):
        report, path = small_report
        lines = [
            json.dumps(line, sort_keys=True) for line in report.to_lines()
        ]
        assert path.read_text().splitlines() == lines


class TestEvidence:
    """The deltas the campaign exists to produce, on the default grid."""

    def test_breaker_off_regresses_recovery(self, full_report):
        report, _ = full_report
        base = report.cell(cell_name("baseline", "dead_dpu"))["metrics"]
        off = report.cell(cell_name("breaker_off", "dead_dpu"))["metrics"]
        assert off["recovery_seconds"] > base["recovery_seconds"]
        delta = report.cell(cell_name("breaker_off", "dead_dpu"))["delta"]
        assert delta["recovery_seconds_delta"] > 0

    def test_journal_off_pays_full_restart(self, full_report):
        report, _ = full_report
        base = report.cell(cell_name("baseline", "crash_dead"))["metrics"]
        off = report.cell(cell_name("journal_off", "crash_dead"))["metrics"]
        assert off["restart_overhead_seconds"] == off["total_seconds"]
        assert off["restart_overhead_seconds"] > base["restart_overhead_seconds"]
        assert base["resume_identical"] is True
        assert base["rounds_replayed"] > 0

    def test_requeue_off_abandons_pairs_under_persistent_death(
        self, full_report
    ):
        report, _ = full_report
        off = report.cell(cell_name("requeue_off", "dead_dpu"))["metrics"]
        assert off["abandoned_pairs"] > 0
        assert off["oracle_agreement"] < 1.0
        base = report.cell(cell_name("baseline", "dead_dpu"))["metrics"]
        assert base["oracle_agreement"] == 1.0

    def test_shards_1_halves_throughput(self, full_report):
        report, _ = full_report
        delta = report.cell(cell_name("shards_1", "calm"))["delta"]
        assert delta["throughput_ratio"] < 0.75

    def test_serve_knobs_show_up(self, full_report):
        report, _ = full_report
        assert (
            report.cell(cell_name("cache_off", "calm"))["delta"][
                "serve_cached_pairs_delta"
            ]
            < 0
        )
        assert (
            report.cell(cell_name("fallback_off", "dead_dpu"))["delta"][
                "serve_fallback_pairs_delta"
            ]
            < 0
        )

    def test_scalar_engine_is_model_equivalent(self, full_report):
        """The engine knob moves wall clock only: modeled metrics match."""
        report, _ = full_report
        delta = report.cell(cell_name("scalar_engine", "calm"))["delta"]
        assert delta["throughput_ratio"] == 1.0
        assert delta["oracle_agreement_delta"] == 0.0

    def test_summary_is_ok_and_validates(self, full_report):
        report, path = full_report
        summary = report.summary()
        assert summary["ok"] is True
        assert summary["resumes_checked"] > 0
        assert summary["resumes_identical"] == summary["resumes_checked"]
        assert validate_campaign_report(path) == summary


class TestNetworkGrid:
    def test_network_points_in_standard_grid(self):
        lossy = grid_point_by_name("lossy_net")
        part = grid_point_by_name("partition")
        assert lossy.lossy_links >= 1 and lossy.net_active
        assert part.partition_s > 0 and part.net_active
        assert not grid_point_by_name("calm").net_active

    def test_build_net_plan_seeded_and_calm(self):
        point = grid_point_by_name("lossy_net")
        a = build_net_plan(point, 2, seed=42, point_index=5)
        b = build_net_plan(point, 2, seed=42, point_index=5)
        assert a == b and not a.is_calm()
        assert build_net_plan(grid_point_by_name("calm"), 2, 42, 0) is None
        with pytest.raises(ConfigError, match="lossy"):
            build_net_plan(
                FaultGridPoint(name="flood", lossy_links=3), 2, 42, 0
            )

    def test_crash_and_net_faults_cannot_combine(self):
        # networked cells run inline-only, so crash/resume has no journal
        with pytest.raises(ConfigError, match="inline-only"):
            FaultGridPoint(name="bad", crash=True, lossy_links=1).validate()

    def test_grid_point_dict_back_compat(self):
        # pre-transport reports carry no net fields; they parse as calm
        old = {
            "name": "dead_dpu",
            "dead_dpus": 1,
            "stalled_dpus": 0,
            "corrupt_dpus": 0,
            "crash": False,
        }
        point = FaultGridPoint.from_dict(old)
        assert point.lossy_links == 0 and point.partition_s == 0.0
        assert not point.net_active

    def test_net_cells_complete_oracle_equal(self, full_report):
        report, _ = full_report
        lossy = report.cell(cell_name("baseline", "lossy_net"))["metrics"]
        part = report.cell(cell_name("baseline", "partition"))["metrics"]
        calm = report.cell(cell_name("baseline", "calm"))["metrics"]
        assert lossy["oracle_agreement"] == 1.0
        assert part["oracle_agreement"] == 1.0
        assert part["net_partition_blocked"] >= 1
        assert part["net_redeliveries"] >= 1
        assert all(calm[k] == 0 for k in (
            "net_drops",
            "net_redeliveries",
            "net_duplicates_absorbed",
            "net_partition_blocked",
            "net_steals",
        ))

    def test_validator_rejects_tampered_net_counters(
        self, small_report, tmp_path
    ):
        _, path = small_report
        records = [json.loads(line) for line in path.read_text().splitlines()]
        # SMALL's grid has no network point, so any nonzero net counter
        # in a cell is a fabrication the validator must catch
        records[1]["metrics"]["net_drops"] = 3
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        with pytest.raises(QaError, match="net counters"):
            validate_campaign_report(tampered)


class TestResume:
    def test_resume_from_any_line_truncation_is_byte_identical(
        self, small_report, tmp_path
    ):
        _, golden_path = small_report
        golden = golden_path.read_bytes()
        lines = golden_path.read_text().splitlines(keepends=True)
        work = tmp_path / "torn.jsonl"
        for keep in range(len(lines) + 1):
            work.write_bytes(b"".join(l.encode() for l in lines[:keep]))
            run_campaign(SMALL, report_path=work, resume=True)
            assert work.read_bytes() == golden, f"diverged resuming at {keep}"

    def test_resume_from_torn_partial_line(self, small_report, tmp_path):
        _, golden_path = small_report
        golden = golden_path.read_bytes()
        work = tmp_path / "torn.jsonl"
        work.write_bytes(golden[: len(golden) // 2])
        run_campaign(SMALL, report_path=work, resume=True)
        assert work.read_bytes() == golden

    def test_resume_rejects_foreign_config(self, small_report, tmp_path):
        _, golden_path = small_report
        work = tmp_path / "foreign.jsonl"
        work.write_bytes(golden_path.read_bytes())
        other = CampaignConfig(
            pairs=SMALL.pairs + 4,
            pairs_per_round=SMALL.pairs_per_round,
            serve_requests=0,
            ablations=SMALL.ablations,
            grid=SMALL.grid,
        )
        with pytest.raises(QaError, match="different campaign"):
            run_campaign(other, report_path=work, resume=True)

    def test_events_published_in_cell_order(self):
        from repro.obs import RunTelemetry
        from repro.obs.events import CAMPAIGN_CELL, CAMPAIGN_DONE

        telemetry = RunTelemetry()
        report = run_campaign(SMALL, telemetry=telemetry)
        cells = telemetry.events.events(CAMPAIGN_CELL)
        assert [dict(e.attrs)["ablation"] for e in cells] == [
            r["ablation"] for r in report.cells
        ]
        (done,) = telemetry.events.events(CAMPAIGN_DONE)
        assert dict(done.attrs) == {"cells": len(report.cells), "ok": True}
        # cumulative modeled time: non-decreasing
        times = [e.t_s for e in cells]
        assert times == sorted(times)


class CampaignResumeMachine(RuleBasedStateMachine):
    """Crash the campaign at arbitrary points; resume at arbitrary worker
    counts; the report must always converge to the golden bytes — no
    cell dropped, duplicated, or reordered."""

    golden: bytes = b""

    @initialize()
    def setup(self):
        import tempfile
        from pathlib import Path

        self._dir = tempfile.TemporaryDirectory()
        self.path = Path(self._dir.name) / "report.jsonl"
        if not CampaignResumeMachine.golden:
            run_campaign(SMALL, report_path=self.path)
            CampaignResumeMachine.golden = self.path.read_bytes()
        self.path.write_bytes(CampaignResumeMachine.golden)

    @rule(
        fraction=st.floats(min_value=0.0, max_value=1.0),
        workers=st.sampled_from([0, 2]),
    )
    def crash_and_resume(self, fraction, workers):
        torn = CampaignResumeMachine.golden[
            : int(len(CampaignResumeMachine.golden) * fraction)
        ]
        self.path.write_bytes(torn)
        run_campaign(SMALL, workers=workers, report_path=self.path, resume=True)
        assert self.path.read_bytes() == CampaignResumeMachine.golden

    @rule()
    def validate_current(self):
        summary = validate_campaign_report(self.path)
        assert summary["cells"] == len(SMALL.cell_names())

    def teardown(self):
        self._dir.cleanup()


CampaignResumeMachine.TestCase.settings = settings(
    max_examples=8,
    stateful_step_count=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestCampaignResumeMachine = CampaignResumeMachine.TestCase
