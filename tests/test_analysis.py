"""Tests for the analysis package (stats + comparison)."""

import pytest

from repro.analysis import (
    ComparisonReport,
    Distribution,
    compare_alignments,
    compare_scores,
    summarize_results,
)
from repro.core.aligner import WavefrontAligner
from repro.core.cigar import Cigar
from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError

PEN = AffinePenalties(4, 6, 2)


@pytest.fixture(scope="module")
def results():
    pairs = ReadPairGenerator(length=80, error_rate=0.04, seed=20).pairs(40)
    aligner = WavefrontAligner(PEN)
    return [aligner.align(p.pattern, p.text) for p in pairs]


class TestDistribution:
    def test_basic(self):
        d = Distribution.of([1, 2, 3, 4, 5])
        assert d.count == 5
        assert d.mean == 3
        assert d.median == 3
        assert d.minimum == 1 and d.maximum == 5

    def test_single_value(self):
        d = Distribution.of([7])
        assert d.mean == d.median == d.minimum == d.maximum == 7

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Distribution.of([])

    def test_describe(self):
        assert "n=3" in Distribution.of([1, 2, 3]).describe()


class TestBatchStats:
    def test_summarize(self, results):
        stats = summarize_results(results)
        assert stats.scores.count == 40
        assert 0 <= stats.scores.mean <= 4 * 8  # <= budget * per-edit cost
        assert 0.8 < stats.identities.mean <= 1.0
        assert stats.op_totals["M"] > 0
        assert stats.exact_fraction == 1.0
        assert sum(stats.score_histogram.values()) == 40

    def test_rates(self, results):
        stats = summarize_results(results)
        assert 0 <= stats.mismatch_rate < 0.1
        assert 0 <= stats.gap_rate < 0.1

    def test_report_renders(self, results):
        text = summarize_results(results).report()
        assert "scores" in text and "identities" in text

    def test_score_only_batch(self):
        pairs = ReadPairGenerator(length=40, error_rate=0.02, seed=21).pairs(5)
        aligner = WavefrontAligner(PEN)
        res = [aligner.align(p.pattern, p.text, score_only=True) for p in pairs]
        stats = summarize_results(res)
        assert stats.scores.count == 5
        assert stats.op_totals == {"M": 0, "X": 0, "I": 0, "D": 0}

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize_results([])


class TestCompareScores:
    def test_agreement(self):
        r = compare_scores([1, 2, 3], [1, 2, 3])
        assert r.scores_agree
        assert r.score_agreement == 1.0
        assert not r.disagreements

    def test_disagreement_recorded(self):
        r = compare_scores([1, 2, 3], [1, 9, 3])
        assert not r.scores_agree
        assert r.score_matches == 2
        assert r.disagreements[0].index == 1
        assert "1/3" not in r.report()  # sanity: report renders counts
        assert "2/3" in r.report()

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            compare_scores([1], [1, 2])
        with pytest.raises(ConfigError):
            compare_scores([], [])


class TestCompareAlignments:
    def test_identical(self):
        c = Cigar.from_string("3M")
        r = compare_alignments([(0, c)], [(0, c)])
        assert r.cigar_matches == 1 and r.cigars_compared == 1

    def test_cooptimal_paths_differ(self):
        a = Cigar.from_string("1M1X1M")
        b = Cigar.from_string("1X2M")
        r = compare_alignments([(4, a)], [(4, b)])
        assert r.scores_agree
        assert r.cigar_matches == 0
        assert any(d.kind == "cigar" for d in r.disagreements)

    def test_score_only_entries_skipped(self):
        r = compare_alignments([(4, None)], [(4, Cigar.from_string("1M"))])
        assert r.cigars_compared == 0

    def test_many_disagreements_truncated_in_report(self):
        left = [(i, None) for i in range(20)]
        right = [(i + 1, None) for i in range(20)]
        text = compare_alignments(left, right).report()
        assert "and 10 more" in text
