"""Unit tests for the penalty models."""

import pytest

from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    replace,
)
from repro.errors import PenaltyError


class TestEditPenalties:
    def test_costs(self):
        pen = EditPenalties()
        assert pen.mismatch_cost() == 1
        assert pen.gap_cost(0) == 0
        assert pen.gap_cost(5) == 5

    def test_negative_gap_rejected(self):
        with pytest.raises(PenaltyError):
            EditPenalties().gap_cost(-1)

    def test_worst_case(self):
        assert EditPenalties().worst_case_score(10, 7) == 10
        assert EditPenalties().worst_case_score(0, 0) == 0

    def test_hashable(self):
        assert hash(EditPenalties()) == hash(EditPenalties())


class TestLinearPenalties:
    def test_defaults(self):
        pen = LinearPenalties()
        assert pen.mismatch == 4
        assert pen.indel == 2

    def test_gap_cost_linear(self):
        pen = LinearPenalties(mismatch=3, indel=2)
        assert pen.gap_cost(0) == 0
        assert pen.gap_cost(1) == 2
        assert pen.gap_cost(7) == 14

    def test_invalid(self):
        with pytest.raises(PenaltyError):
            LinearPenalties(mismatch=0, indel=2)
        with pytest.raises(PenaltyError):
            LinearPenalties(mismatch=4, indel=0)
        with pytest.raises(PenaltyError):
            LinearPenalties(mismatch=-4, indel=2)

    def test_worst_case_is_reachable_bound(self):
        pen = LinearPenalties(mismatch=4, indel=2)
        # delete 3 + insert 5 is a legal alignment of (3, 5)
        assert pen.worst_case_score(3, 5) >= pen.gap_cost(3) + pen.gap_cost(5)

    def test_as_tuple(self):
        assert LinearPenalties(5, 3).as_tuple() == (5, 3)


class TestAffinePenalties:
    def test_defaults_are_wfa_defaults(self):
        pen = AffinePenalties()
        assert pen.as_tuple() == (4, 6, 2)

    def test_gap_cost_first_char_pays_open_and_extend(self):
        pen = AffinePenalties(mismatch=4, gap_open=6, gap_extend=2)
        assert pen.gap_cost(0) == 0
        assert pen.gap_cost(1) == 8
        assert pen.gap_cost(3) == 12

    def test_zero_open_allowed(self):
        pen = AffinePenalties(mismatch=2, gap_open=0, gap_extend=1)
        assert pen.gap_cost(4) == 4

    def test_invalid(self):
        with pytest.raises(PenaltyError):
            AffinePenalties(mismatch=0)
        with pytest.raises(PenaltyError):
            AffinePenalties(gap_open=-1)
        with pytest.raises(PenaltyError):
            AffinePenalties(gap_extend=0)

    def test_to_linear_drops_opening(self):
        lin = AffinePenalties(4, 6, 2).to_linear()
        assert lin.mismatch == 4
        assert lin.indel == 2

    def test_worst_case_bounds_full_indel_alignment(self):
        pen = AffinePenalties(4, 6, 2)
        assert pen.worst_case_score(10, 12) >= pen.gap_cost(10) + pen.gap_cost(12)

    def test_negative_gap_rejected(self):
        with pytest.raises(PenaltyError):
            AffinePenalties().gap_cost(-2)


class TestCigarScoreHelper:
    def test_cigar_score_affine(self):
        pen = AffinePenalties(4, 6, 2)
        # 3 matches, 1 mismatch, gap of 2: 0 + 4 + (6 + 2*2) = 14
        assert pen.cigar_score("3M1X2I") == 14

    def test_cigar_score_expanded_form(self):
        pen = EditPenalties()
        assert pen.cigar_score("MMXID") == 3

    def test_replace_helper(self):
        pen = replace(AffinePenalties(4, 6, 2), mismatch=5)
        assert pen.as_tuple() == (5, 6, 2)
