"""Cross-cutting property-based tests (hypothesis) on library invariants.

Module-level invariants are property-tested next to their modules; this
suite covers the *cross-module* identities that tie the system together:

1. metric relationships (edit <= indel <= 2*edit; affine >= linear; ...)
2. generator -> aligner -> CIGAR -> penalty-model consistency loops
3. PIM record packing is the identity on the wire
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bitparallel import levenshtein_dp, myers_edit_distance
from repro.baselines.gotoh import gotoh_score
from repro.baselines.myers_ond import myers_indel_distance
from repro.core.aligner import WavefrontAligner
from repro.core.cigar import Cigar
from repro.core.penalties import AffinePenalties, EditPenalties, LinearPenalties
from repro.data.generator import ReadPair, mutate_sequence, random_sequence
from repro.pim.layout import MramLayout

from conftest import dna_seq, similar_pair

PEN = AffinePenalties(4, 6, 2)


# --- metric relationships ----------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(pair=similar_pair(max_len=30, max_edits=6))
def test_edit_lower_bounds_scaled_affine(pair):
    """Every affine alignment with unit ops >= 1 costs >= edit distance."""
    p, t = pair
    edit = WavefrontAligner(EditPenalties()).score(p, t)
    affine = WavefrontAligner(PEN).score(p, t)
    # every edit op costs between min(x, e) and max(x, o+e) under affine
    assert affine >= edit * min(PEN.mismatch, PEN.gap_extend)
    assert affine <= edit * max(PEN.mismatch, PEN.gap_open + PEN.gap_extend)


@settings(max_examples=60, deadline=None)
@given(pair=similar_pair(max_len=30, max_edits=6))
def test_linear_never_exceeds_affine(pair):
    """Dropping the gap-opening penalty can only help."""
    p, t = pair
    affine = WavefrontAligner(PEN).score(p, t)
    linear = WavefrontAligner(PEN.to_linear()).score(p, t)
    assert linear <= affine


@settings(max_examples=50, deadline=None)
@given(a=dna_seq, b=dna_seq)
def test_three_levenshtein_implementations_agree(a, b):
    dp = levenshtein_dp(a, b)
    assert myers_edit_distance(a, b) == dp
    assert WavefrontAligner(EditPenalties()).score(a, b) == dp


@settings(max_examples=40, deadline=None)
@given(a=dna_seq, b=dna_seq)
def test_indel_brackets_edit(a, b):
    edit = levenshtein_dp(a, b)
    indel = myers_indel_distance(a, b)
    assert edit <= indel <= 2 * edit


@settings(max_examples=40, deadline=None)
@given(pair=similar_pair(max_len=25, max_edits=5))
def test_score_symmetry_under_swap(pair):
    p, t = pair
    assert WavefrontAligner(PEN).score(p, t) == WavefrontAligner(PEN).score(t, p)


@settings(max_examples=40, deadline=None)
@given(s=dna_seq)
def test_self_alignment_is_free(s):
    r = WavefrontAligner(PEN).align(s, s)
    assert r.score == 0
    assert r.cigar.counts()["M"] == len(s)


# --- generator loops -----------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    length=st.integers(1, 60),
    budget=st.integers(0, 8),
)
def test_generator_aligner_budget_loop(seed, length, budget):
    """distance(pattern, mutate(pattern, d)) <= d, measured by edit-WFA."""
    rng = random.Random(seed)
    pattern = random_sequence(length, rng)
    text = mutate_sequence(pattern, budget, rng)
    assert WavefrontAligner(EditPenalties()).score(pattern, text) <= budget


@settings(max_examples=50, deadline=None)
@given(pair=similar_pair(max_len=30, max_edits=6))
def test_cigar_edit_distance_upper_bounds_true_distance(pair):
    p, t = pair
    r = WavefrontAligner(PEN).align(p, t)
    assert r.cigar.edit_distance() >= levenshtein_dp(p, t)


@settings(max_examples=50, deadline=None)
@given(pair=similar_pair(max_len=30, max_edits=6))
def test_optimality_no_cigar_beats_wfa(pair):
    """WFA's score is a lower bound over *any* valid alignment — check a
    few alternative CIGARs produced by other aligners."""
    p, t = pair
    best = WavefrontAligner(PEN).score(p, t)
    # the all-gaps alignment
    alternative = Cigar.from_string(
        (f"{len(p)}D" if p else "") + (f"{len(t)}I" if t else "")
    )
    if alternative.columns():
        assert alternative.score(PEN) >= best
    assert gotoh_score(p, t, PEN) == best


@settings(max_examples=40, deadline=None)
@given(a=dna_seq, b=dna_seq, c=dna_seq)
def test_edit_triangle_inequality(a, b, c):
    """Levenshtein is a metric: d(a,c) <= d(a,b) + d(b,c)."""
    al = WavefrontAligner(EditPenalties())
    assert al.score(a, c) <= al.score(a, b) + al.score(b, c)


@settings(max_examples=40, deadline=None)
@given(
    p1=dna_seq, t1=dna_seq, p2=dna_seq, t2=dna_seq
)
def test_concatenation_subadditivity(p1, t1, p2, t2):
    """Any metric here: score(p1+p2, t1+t2) <= score(p1,t1) + score(p2,t2)
    (concatenating the two alignments is a valid alignment)."""
    for pen in (PEN, EditPenalties(), LinearPenalties(4, 2)):
        al = WavefrontAligner(pen)
        whole = al.score(p1 + p2, t1 + t2)
        assert whole <= al.score(p1, t1) + al.score(p2, t2)


@settings(max_examples=40, deadline=None)
@given(pair=similar_pair(max_len=30, max_edits=6))
def test_reverse_invariance(pair):
    """Global alignment cost is invariant under reversing both sequences."""
    p, t = pair
    al = WavefrontAligner(PEN)
    assert al.score(p, t) == al.score(p[::-1], t[::-1])


@settings(max_examples=30, deadline=None)
@given(pair=similar_pair(max_len=25, max_edits=5), extra=st.integers(1, 10))
def test_appending_matches_is_free(pair, extra):
    """Appending an identical suffix to both sequences never changes cost."""
    p, t = pair
    suffix = "ACGT" * extra
    al = WavefrontAligner(PEN)
    # may only help or stay equal... in fact cost stays <= and any optimal
    # alignment of (p,t) extends with free matches, so equality holds for
    # a suffix that cannot be better aligned elsewhere.  Assert the safe
    # direction plus the edit-metric equality bound.
    assert al.score(p + suffix, t + suffix) <= al.score(p, t)


# --- PIM wire format ------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    p=st.text(alphabet="ACGTN", min_size=0, max_size=64),
    t=st.text(alphabet="ACGTN", min_size=0, max_size=64),
)
def test_pair_record_roundtrip(p, t):
    layout = MramLayout.plan(
        num_pairs=1,
        max_pattern_len=64,
        max_text_len=64,
        max_cigar_ops=4,
        tasklets=1,
    )
    out = layout.unpack_pair(layout.pack_pair(ReadPair(pattern=p, text=t)))
    assert (out.pattern, out.text) == (p, t)


@settings(max_examples=50, deadline=None)
@given(pair=similar_pair(max_len=25, max_edits=4), score=st.integers(0, 1000))
def test_result_record_roundtrip(pair, score):
    p, t = pair
    cigar = WavefrontAligner(PEN).align(p, t).cigar
    layout = MramLayout.plan(
        num_pairs=1,
        max_pattern_len=64,
        max_text_len=64,
        max_cigar_ops=max(len(cigar), 1),
        tasklets=1,
    )
    got_score, got_cigar = layout.unpack_result(layout.pack_result(score, cigar))
    assert got_score == score
    assert got_cigar == cigar
