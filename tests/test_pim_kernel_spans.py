"""Ends-free alignment on the DPU kernel (bounded-overhang mapping)."""

import pytest

from repro.baselines.gotoh_endsfree import gotoh_endsfree_score
from repro.core.penalties import AffinePenalties
from repro.core.span import AlignmentSpan
from repro.data.generator import ReadPair, ReadPairGenerator, random_sequence
from repro.errors import KernelError
from repro.pim.config import DpuConfig, HostTransferConfig
from repro.pim.dpu import Dpu
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import MramLayout
from repro.pim.transfer import HostTransferEngine

import random

PEN = AffinePenalties(4, 6, 2)
SPAN = AlignmentSpan(text_begin_free=12, text_end_free=12)


def mapping_pairs(n: int, seed: int = 70) -> list[ReadPair]:
    """Reads embedded in slightly longer windows (bounded overhang)."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(n):
        read = random_sequence(50, rng)
        left = random_sequence(rng.randint(0, 10), rng)
        right = random_sequence(rng.randint(0, 10), rng)
        pairs.append(ReadPair(pattern=read, text=left + read + right))
    return pairs


def run_kernel(pairs, kc: KernelConfig, tasklets: int = 2):
    kernel = WfaDpuKernel(kc)
    dpu = Dpu(DpuConfig())
    layout = MramLayout.plan(
        num_pairs=len(pairs),
        max_pattern_len=max(len(p.pattern) for p in pairs),
        max_text_len=max(len(p.text) for p in pairs),
        max_cigar_ops=kc.max_cigar_ops,
        tasklets=tasklets,
        metadata_bytes_per_tasklet=kc.metadata_peak_bytes(),
    )
    HostTransferEngine(HostTransferConfig()).push_batch(dpu, layout, pairs)
    assignments = [list(range(t, len(pairs), tasklets)) for t in range(tasklets)]
    stats, results = kernel.run(
        dpu, layout, assignments, "mram", collect_results=True
    )
    return dpu, layout, stats, results


class TestEndsFreeKernel:
    def test_scores_match_host_oracle(self):
        pairs = mapping_pairs(10)
        kc = KernelConfig(penalties=PEN, max_read_len=72, max_edits=2, span=SPAN)
        _dpu, _layout, _stats, results = run_kernel(pairs, kc)
        for index, res in results:
            pair = pairs[index]
            oracle = gotoh_endsfree_score(pair.pattern, pair.text, PEN, SPAN)
            assert res.score == oracle == 0  # exact embeddings

    def test_region_coordinates_through_mram(self):
        pairs = mapping_pairs(6, seed=71)
        kc = KernelConfig(penalties=PEN, max_read_len=72, max_edits=2, span=SPAN)
        dpu, layout, _stats, results = run_kernel(pairs, kc)
        for i, pair in enumerate(pairs):
            record = dpu.mram.read(layout.result_addr(i), layout.result_record_size)
            score, cigar = layout.unpack_result(record)
            p_start, t_start = layout.unpack_result_region(record)
            overhang_left = len(pair.text) - 50  # total overhang
            assert 0 <= t_start <= overhang_left
            assert p_start == 0  # pattern is anchored
            cigar.validate(
                pair.pattern[p_start:],
                pair.text[t_start : t_start + cigar.text_length()],
            )
            assert cigar.score(PEN) == score

    def test_noisy_mapping(self):
        rng = random.Random(72)
        pairs = []
        for _ in range(8):
            read = random_sequence(50, rng)
            noisy = list(read)
            noisy[10] = "A" if noisy[10] != "A" else "C"
            pairs.append(
                ReadPair(
                    pattern="".join(noisy),
                    text=random_sequence(8, rng) + read + random_sequence(8, rng),
                )
            )
        kc = KernelConfig(penalties=PEN, max_read_len=70, max_edits=3, span=SPAN)
        _d, _l, _s, results = run_kernel(pairs, kc)
        for index, res in results:
            pair = pairs[index]
            assert res.score == gotoh_endsfree_score(pair.pattern, pair.text, PEN, SPAN)

    def test_unbounded_span_rejected(self):
        with pytest.raises(KernelError, match="ends-free"):
            KernelConfig(
                penalties=PEN,
                max_read_len=50,
                span=AlignmentSpan.semiglobal(),
            )

    def test_span_widens_wram_plan(self):
        base = KernelConfig(penalties=PEN, max_read_len=60, max_edits=2)
        spanned = KernelConfig(
            penalties=PEN, max_read_len=60, max_edits=2, span=SPAN
        )
        assert spanned.max_wavefront_width > base.max_wavefront_width
        assert spanned.metadata_peak_bytes() > base.metadata_peak_bytes()

    def test_regions_through_the_system(self):
        """PimSystem surfaces the clipping coordinates gathered from MRAM."""
        from repro.pim.config import PimSystemConfig
        from repro.pim.system import PimSystem

        pairs = mapping_pairs(8, seed=73)
        cfg = PimSystemConfig(
            num_dpus=2, num_ranks=1, tasklets=2, num_simulated_dpus=2
        )
        kc = KernelConfig(penalties=PEN, max_read_len=72, max_edits=2, span=SPAN)
        run = PimSystem(cfg, kc).align(pairs, verify=True)
        assert set(run.regions) == set(range(8))
        for idx, score, cigar in run.results:
            p_start, t_start = run.regions[idx]
            pair = pairs[idx]
            cigar.validate(
                pair.pattern[p_start : p_start + cigar.pattern_length()],
                pair.text[t_start : t_start + cigar.text_length()],
            )
            # at least one gathered window has a nonzero clip
        assert any(t != 0 for _p, t in run.regions.values())

    def test_global_span_unchanged(self):
        base = KernelConfig(penalties=PEN, max_read_len=60, max_edits=2)
        explicit = KernelConfig(
            penalties=PEN,
            max_read_len=60,
            max_edits=2,
            span=AlignmentSpan.global_(),
        )
        assert base.max_wavefront_width == explicit.max_wavefront_width
