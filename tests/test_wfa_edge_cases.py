"""Edge-case batteries for the WFA core.

Inputs chosen to stress specific mechanisms: homopolymers (massive
extension runs and ambiguous gap placement), periodic sequences (many
co-optimal paths), extreme length asymmetry (one-sided gap handling),
single-symbol alphabets, and protein-style alphabets (nothing in the
engine is DNA-specific).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gotoh import gotoh_score
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties

PEN = AffinePenalties(4, 6, 2)


class TestHomopolymers:
    def test_pure_homopolymer_gap(self):
        r = WavefrontAligner(PEN).align("A" * 50, "A" * 60)
        assert r.score == PEN.gap_cost(10)
        assert r.cigar.counts() == {"M": 50, "X": 0, "I": 10, "D": 0}

    def test_homopolymer_vs_other_base(self):
        # 20 mismatches (80) vs del+ins (2*(6+40)=92): mismatches win
        r = WavefrontAligner(PEN).align("A" * 20, "T" * 20)
        assert r.score == 20 * 4
        assert r.cigar.counts()["X"] == 20

    def test_interrupted_homopolymer(self):
        p = "A" * 30
        t = "A" * 15 + "T" + "A" * 14  # same length, one foreign base
        r = WavefrontAligner(PEN).align(p, t)
        assert r.score == 4  # one mismatch beats del+ins (16)
        assert r.score == gotoh_score(p, t, PEN)
        # a longer interruption must be inserted instead
        t2 = "A" * 15 + "T" + "A" * 15
        assert WavefrontAligner(PEN).score(p, t2) == PEN.gap_cost(1)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 60), m=st.integers(1, 60))
    def test_homopolymer_pairs_analytic(self, n, m):
        """Same-base homopolymers: score is exactly gap_cost(|n-m|)."""
        score = WavefrontAligner(PEN).score("G" * n, "G" * m)
        assert score == PEN.gap_cost(abs(n - m))


class TestPeriodicSequences:
    def test_tandem_repeat_shift(self):
        p = "ACGT" * 10
        t = p[2:] + p[:2]  # rotated by 2
        r = WavefrontAligner(PEN).align(p, t)
        assert r.score == gotoh_score(p, t, PEN)
        r.cigar.validate(p, t)

    def test_repeat_expansion(self):
        p = "CAG" * 10
        t = "CAG" * 14
        r = WavefrontAligner(PEN).align(p, t)
        assert r.score == PEN.gap_cost(12)
        # the 12 inserted bases must form one run (one opening)
        gap_runs = [op for op in r.cigar if op.op == "I"]
        assert len(gap_runs) == 1 and gap_runs[0].length == 12


class TestAsymmetricLengths:
    def test_tiny_vs_huge(self):
        p = "ACGT"
        t = "ACGT" + "T" * 200
        r = WavefrontAligner(PEN).align(p, t)
        assert r.score == PEN.gap_cost(200)

    def test_one_char_each_side(self):
        assert WavefrontAligner(PEN).score("A", "ACGTACGTAC") == PEN.gap_cost(9)
        assert WavefrontAligner(PEN).score("ACGTACGTAC", "A") == PEN.gap_cost(9)

    @settings(max_examples=30, deadline=None)
    @given(
        prefix=st.text(alphabet="ACGT", min_size=0, max_size=20),
        gap=st.integers(1, 100),
    )
    def test_pure_suffix_insertion(self, prefix, gap):
        t = prefix + "T" * gap
        score = WavefrontAligner(PEN).score(prefix, t)
        # inserting the suffix is one option; the optimum can only be <=
        assert score <= PEN.gap_cost(gap)
        assert score == gotoh_score(prefix, t, PEN)


class TestAlphabets:
    def test_single_symbol_alphabet(self):
        assert WavefrontAligner(EditPenalties()).score("aaaa", "aaa") == 1

    def test_protein_alphabet(self):
        p = "MKVLAARW"
        t = "MKVLDARW"
        r = WavefrontAligner(PEN).align(p, t)
        assert r.score == 4
        assert r.cigar.counts()["X"] == 1

    def test_case_sensitivity(self):
        # 'a' != 'A' by design (no normalization in the engine)
        assert WavefrontAligner(EditPenalties()).score("ACGT", "acgt") == 4

    def test_digits_and_punctuation(self):
        assert WavefrontAligner(EditPenalties()).score("1.2.3", "1.2.4") == 1


class TestPathologicalPenalties:
    def test_huge_mismatch_forces_gaps(self):
        pen = AffinePenalties(mismatch=1000, gap_open=1, gap_extend=1)
        r = WavefrontAligner(pen).align("AT", "AC")
        assert r.cigar.counts()["X"] == 0  # never substitutes
        assert r.score == gotoh_score("AT", "AC", pen)

    def test_huge_gap_forces_mismatches(self):
        pen = AffinePenalties(mismatch=1, gap_open=500, gap_extend=500)
        p, t = "ACGTACGT", "AGGTACGT"
        r = WavefrontAligner(pen).align(p, t)
        assert r.cigar.counts()["I"] == 0 and r.cigar.counts()["D"] == 0
        assert r.score == gotoh_score(p, t, pen)

    def test_zero_open_behaves_linearly(self):
        pen = AffinePenalties(mismatch=3, gap_open=0, gap_extend=2)
        from repro.core.penalties import LinearPenalties

        lin = LinearPenalties(mismatch=3, indel=2)
        p, t = "ACGTACGTA", "ACGACGTTA"
        assert WavefrontAligner(pen).score(p, t) == WavefrontAligner(lin).score(p, t)
