"""Deadlines, priority shedding, and CPU fallback (repro.serve.resilience)."""

from __future__ import annotations

import warnings

import pytest

from repro.baselines.gotoh import gotoh_align
from repro.data.generator import ReadPair, ReadPairGenerator
from repro.errors import (
    ConfigError,
    DeadlineExceeded,
    DegradedCapacity,
    Overloaded,
    RequestCancelled,
)
from repro.pim.faults import DpuDeath, FaultPlan, RetryPolicy
from repro.pim.health import HealthPolicy
from repro.serve import (
    BACKEND_CPU,
    BACKEND_PIM,
    AlignRequest,
    CpuFallbackBackend,
    FallbackPolicy,
    LoadgenConfig,
    ServiceConfig,
    build_service,
    run_load,
    validate_load_report,
)
from repro.serve.clock import VirtualClock


def pairs(n: int, seed: int = 3):
    return tuple(ReadPairGenerator(length=12, error_rate=0.1, seed=seed).pairs(n))


def request(rid: str, n: int = 1, seed: int = 3, **kw) -> AlignRequest:
    return AlignRequest(client="c", request_id=rid, pairs=pairs(n, seed), **kw)


def make_service(**kw):
    clock = VirtualClock()
    cfg = ServiceConfig(
        max_batch_pairs=kw.pop("max_batch_pairs", 8),
        max_wait_s=kw.pop("max_wait_s", 1e-3),
        max_queue_pairs=kw.pop("max_queue_pairs", 4096),
        cache_pairs=kw.pop("cache_pairs", 0),
    )
    service = build_service(
        num_dpus=2,
        tasklets=2,
        max_read_len=16,
        max_edits=3,
        config=cfg,
        clock=clock,
        **kw,
    )
    return service, clock


def series(service, name: str) -> list:
    for family in service.metrics_snapshot()["families"]:
        if family["name"] == name:
            return family["series"]
    return []


def total(service, name: str, **labels) -> float:
    out = 0.0
    for s in series(service, name):
        if all(s["labels"].get(k) == v for k, v in labels.items()):
            out += s["value"]
    return out


class TestDeadlines:
    def test_deadline_already_passed_rejects_at_submit(self):
        service, clock = make_service()
        clock.advance(1.0)
        future = service.submit(request("r0", deadline_s=0.5))
        assert future.done()
        with pytest.raises(DeadlineExceeded) as exc:
            future.result()
        assert exc.value.deadline_s == 0.5
        assert service.stats.rejected == 1
        assert total(service, "serve_deadline_exceeded_total") == 1

    def test_timer_fires_on_clock_for_unresolved_request(self):
        service, clock = make_service(max_batch_pairs=64, max_wait_s=10.0)
        future = service.submit(request("r0", deadline_s=0.25))
        assert not future.done()
        clock.advance(0.2)
        assert not future.done()
        clock.advance(0.1)  # crosses the deadline: timer resolves it
        assert future.done()
        with pytest.raises(DeadlineExceeded):
            future.result()
        assert total(service, "serve_deadline_exceeded_total") == 1
        # the dead pairs were pulled from the batcher; nothing dispatches
        service.drain()
        assert service.stats.completed == 0

    def test_modeled_completion_past_deadline_is_typed(self):
        # batch completes in modeled time beyond the deadline even
        # though the clock never reaches it — still a deadline miss
        service, clock = make_service(max_batch_pairs=1)
        future = service.submit(request("r0", deadline_s=1e-9))
        assert future.done()
        with pytest.raises(DeadlineExceeded) as exc:
            future.result()
        assert exc.value.completion_s > exc.value.deadline_s
        assert total(service, "serve_requests_total", outcome="deadline") == 1

    def test_request_meeting_deadline_unaffected(self):
        service, clock = make_service(max_batch_pairs=1)
        future = service.submit(request("r0", deadline_s=100.0))
        assert future.done()
        assert future.result().num_pairs == 1
        assert total(service, "serve_deadline_exceeded_total") == 0


class TestCancelDeadlineRace:
    def test_cancel_disarms_deadline_pinned_metrics(self):
        """Satellite pin: a cancelled request must never ALSO count as a
        deadline miss when its deadline later passes on the clock."""
        service, clock = make_service(max_batch_pairs=64, max_wait_s=10.0)
        future = service.submit(request("r0", deadline_s=0.5))
        assert service.cancel(future) is True
        with pytest.raises(RequestCancelled):
            future.result()
        clock.advance(1.0)  # sail past the dead request's deadline
        service.drain()
        assert total(service, "serve_requests_total", outcome="cancelled") == 1
        assert total(service, "serve_requests_total", outcome="deadline") == 0
        assert total(service, "serve_deadline_exceeded_total") == 0
        assert service.stats.rejected == 1
        assert service.stats.in_flight == 0

    def test_deadline_then_cancel_returns_false(self):
        service, clock = make_service(max_batch_pairs=64, max_wait_s=10.0)
        future = service.submit(request("r0", deadline_s=0.25))
        clock.advance(0.5)
        assert future.done()
        assert service.cancel(future) is False
        assert total(service, "serve_requests_total", outcome="deadline") == 1
        assert total(service, "serve_requests_total", outcome="cancelled") == 0

    def test_cancel_after_dispatch_absorbs_results(self):
        service, clock = make_service(max_batch_pairs=1, cache_pairs=16)
        future = service.submit(request("r0", deadline_s=5.0))
        assert future.done()  # batch-size flush resolved it already
        assert service.cancel(future) is False
        # a second identical request is served from cache
        f2 = service.submit(request("r1"))
        service.drain()
        assert f2.result().cached == (True,)


class TestPriorityShedding:
    def test_high_priority_sheds_lowest_youngest_first(self):
        service, clock = make_service(
            max_batch_pairs=64, max_wait_s=10.0, max_queue_pairs=4
        )
        f_low_old = service.submit(request("low-old", n=2, priority=0))
        f_low_new = service.submit(request("low-new", n=2, priority=0))
        assert service.queue_pairs == 4
        f_high = service.submit(request("high", n=2, priority=5))
        # youngest of the lowest priority went first, and one was enough
        assert f_low_new.done()
        with pytest.raises(Overloaded):
            f_low_new.result()
        assert not f_low_old.done()
        assert not f_high.done()
        assert total(service, "serve_shed_total") == 1
        assert total(service, "serve_requests_total", outcome="shed") == 1
        service.drain()
        assert f_low_old.result().num_pairs == 2
        assert f_high.result().num_pairs == 2

    def test_equal_priority_is_not_shed(self):
        service, clock = make_service(
            max_batch_pairs=64, max_wait_s=10.0, max_queue_pairs=2
        )
        f0 = service.submit(request("r0", n=2, priority=1))
        with pytest.raises(Overloaded):
            service.submit(request("r1", n=2, priority=1))
        assert not f0.done()
        assert total(service, "serve_shed_total") == 0
        service.drain()
        assert f0.result().num_pairs == 2

    def test_dispatched_requests_are_never_shed(self):
        service, clock = make_service(max_batch_pairs=2, max_queue_pairs=2)
        f0 = service.submit(request("r0", n=2, priority=0))
        assert f0.done()  # flushed and resolved at size trigger
        clock.advance(100.0)  # modeled completion behind us: queue empty
        f1 = service.submit(request("r1", n=2, priority=9))
        service.drain()
        assert f0.result().num_pairs == 2
        assert f1.result().num_pairs == 2


class TestFallbackPolicy:
    def test_defaults_validate(self):
        FallbackPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_healthy_fraction": -0.1},
            {"min_healthy_fraction": 1.5},
            {"baseline": "smith-waterman"},
            {"cpu_pairs_per_s": 0.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FallbackPolicy(**kwargs)


def degraded_service(**kw):
    """One of two DPUs permanently dead + aggressive breaker: healthy
    fraction drops to 0.5, below the 0.9 threshold -> CPU fallback."""
    return make_service(
        fault_plan=FaultPlan(deaths=(DpuDeath(dpu_id=1),)),
        retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=1e-4),
        health_policy=HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9),
        fallback=FallbackPolicy(min_healthy_fraction=0.9),
        **kw,
    )


class TestCpuFallback:
    def test_fallback_results_oracle_equal_to_pim(self):
        """Acceptance pin: degraded batches flagged cpu-fallback carry
        exactly the scores/CIGARs a healthy PIM fleet would produce."""
        healthy_service, _ = make_service(max_batch_pairs=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            degraded, _ = degraded_service(max_batch_pairs=4)
            reference = healthy_service.submit(request("ref", n=4)).result()
            # warm the ledger until the breaker opens, then the probe
            futures = [
                degraded.submit(request(f"r{i}", n=4, seed=3)) for i in range(4)
            ]
            degraded.drain()
        responses = [f.result() for f in futures]
        assert any(r.backend == BACKEND_CPU for r in responses)
        from repro.core.cigar import Cigar
        from repro.core.penalties import AffinePenalties

        penalties = AffinePenalties()
        batch = pairs(4, seed=3)
        for resp in responses:
            # same optimal score, and a CIGAR that validates and
            # rescores to it — the qa.oracle notion of equality (WFA
            # and Gotoh may pick different co-optimal tracebacks)
            assert resp.scores == reference.scores
            for pair, score, cigar in zip(batch, resp.scores, resp.cigars):
                parsed = Cigar.from_string(cigar)
                parsed.validate(pair.pattern, pair.text)
                assert parsed.score(penalties) == score
        fallback_pairs = total(degraded, "serve_fallback_pairs_total")
        assert fallback_pairs == sum(
            r.num_pairs for r in responses if r.backend == BACKEND_CPU
        )

    def test_healthy_fleet_never_falls_back(self):
        service, _ = make_service(
            max_batch_pairs=4,
            health_policy=HealthPolicy(),
            fallback=FallbackPolicy(min_healthy_fraction=0.9),
        )
        future = service.submit(request("r0", n=4))
        service.drain()
        assert future.result().backend == BACKEND_PIM
        assert total(service, "serve_fallback_pairs_total") == 0

    def test_backend_attribution_cache(self):
        service, _ = make_service(max_batch_pairs=1, cache_pairs=16)
        first = service.submit(request("r0")).result()
        assert first.backend == BACKEND_PIM
        again = service.submit(request("r1"))
        service.drain()
        assert again.result().backend == "cache"

    def test_cpu_backend_matches_gotoh_directly(self):
        from repro.core.penalties import AffinePenalties
        from repro.pim.kernel import KernelConfig

        kc = KernelConfig(
            penalties=AffinePenalties(), max_read_len=16, max_edits=3
        )
        backend = CpuFallbackBackend(kc, FallbackPolicy(cpu_pairs_per_s=100.0))
        batch = list(pairs(5))
        results, seconds = backend.align_batch(batch)
        assert seconds == pytest.approx(0.05)
        for pair, (score, cigar, start) in zip(batch, results):
            ref_score, ref_cigar = gotoh_align(pair.pattern, pair.text, kc.penalties)
            assert score == ref_score
            assert str(cigar) == str(ref_cigar)
            assert start == (0, 0)
        assert backend.pairs_served == 5 and backend.batches_served == 1

    def test_bitparallel_baseline_scores_only(self):
        from repro.core.penalties import EditPenalties
        from repro.pim.kernel import KernelConfig

        kc = KernelConfig(penalties=EditPenalties(), max_read_len=16, max_edits=3)
        backend = CpuFallbackBackend(
            kc, FallbackPolicy(baseline="bitparallel")
        )
        results, _ = backend.align_batch([ReadPair("ACGT", "AGGT")])
        (score, cigar, _), = results
        assert score == 1 and cigar is None


class TestDegradedLoadReport:
    def test_report_schema_valid_under_degradation(self, tmp_path):
        """Acceptance pin: repro.serve.load/v1 reports stay schema-valid
        while the fleet is degraded and batches ride the CPU path."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            service, _ = degraded_service(max_batch_pairs=8)
            report = run_load(
                service,
                LoadgenConfig(requests=60, rate=5000.0, length=10, seed=4),
            )
        out = tmp_path / "load.jsonl"
        report.write(out)
        summary = validate_load_report(out)
        assert summary["requests"] == 60
        assert total(service, "serve_fallback_pairs_total") > 0
