"""Failure-injection and stress tests across the PIM stack.

The simulator should fail the way the hardware/toolchain would: loudly,
at the exact contract that was violated — and the verification layers
should catch corrupted state rather than propagate it.
"""

import pytest

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPair, ReadPairGenerator
from repro.errors import AlignmentFault, KernelError, LayoutError, MemoryFault
from repro.pim.config import DpuConfig, PimSystemConfig
from repro.pim.dpu import Dpu
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem

PEN = AffinePenalties(4, 6, 2)


def tiny_system(**kw) -> PimSystem:
    cfg = PimSystemConfig(num_dpus=2, num_ranks=1, tasklets=2, num_simulated_dpus=2)
    kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=2, **kw)
    return PimSystem(cfg, kc)


class TestVerifyCatchesCorruption:
    def test_corrupted_result_record_detected(self):
        """Flip bits in a gathered score field; verify must notice."""
        system = tiny_system()
        pairs = ReadPairGenerator(length=50, error_rate=0.04, seed=50).pairs(4)
        layout = system.plan_layout(2)

        # Run once cleanly, then corrupt one result score in MRAM and
        # re-gather through the verification path.
        from repro.pim.transfer import HostTransferEngine

        dpu = Dpu(system.config.dpu, dpu_id=0)
        system.transfer.push_batch(dpu, layout, pairs[:2])
        stats, _ = system.kernel.run(
            dpu, layout, [[0], [1]], system.config.metadata_policy
        )
        # corrupt: add 1 to the stored score of record 0
        addr = layout.result_addr(0)
        score = dpu.mram.read_i32(addr)
        dpu.mram.write_i32(addr, score + 1)
        pulled, _ = HostTransferEngine(system.config.transfer).pull_results(
            dpu, layout, 2
        )
        results = [(i, s, c) for i, (s, c) in enumerate(pulled)]
        with pytest.raises(KernelError, match="rescoring"):
            system._verify_results(pairs, results)

    def test_corrupted_cigar_detected(self):
        system = tiny_system()
        pairs = [ReadPair(pattern="ACGTACGT", text="ACGTACGT")]
        from repro.core.cigar import Cigar

        # claim a CIGAR that doesn't match the pair
        results = [(0, 0, Cigar.from_string("4M1X3M"))]
        with pytest.raises(KernelError, match="invalid"):
            system._verify_results(pairs, results)


class TestContractViolations:
    def test_oversized_record_rejected_at_pack(self):
        system = tiny_system()
        layout = system.plan_layout(1)
        big = ReadPair(pattern="A" * 200, text="A")
        with pytest.raises(LayoutError):
            layout.pack_pair(big)

    def test_misaligned_kernel_buffer_traps(self):
        """A DMA from an unaligned MRAM address must fault."""
        dpu = Dpu(DpuConfig())
        with pytest.raises(AlignmentFault):
            dpu.dma.read(12, 0, 8)

    def test_wram_overflow_traps(self):
        dpu = Dpu(DpuConfig())
        with pytest.raises(MemoryFault):
            dpu.wram.write(64 * 1024 - 4, b"\x00" * 8)

    def test_mram_overflow_traps(self):
        dpu = Dpu(DpuConfig())
        with pytest.raises(MemoryFault):
            dpu.mram.read(64 * 1024 * 1024, 8)

    def test_header_corruption_detected(self):
        from repro.pim.layout import MramLayout

        system = tiny_system()
        layout = system.plan_layout(2)
        dpu = Dpu(system.config.dpu)
        layout.write_header(dpu.mram)
        dpu.mram.write(0, b"\xff" * 8)  # clobber the magic
        with pytest.raises(LayoutError, match="magic"):
            MramLayout.read_header(dpu.mram)


class TestStress:
    @pytest.mark.slow
    def test_full_rank_with_verification(self):
        """A whole 64-DPU rank, fully simulated, verified end to end."""
        from repro.pim.config import upmem_single_rank

        system = PimSystem(
            upmem_single_rank(tasklets=8),
            KernelConfig(penalties=PEN, max_read_len=100, max_edits=2),
        )
        pairs = ReadPairGenerator(length=100, error_rate=0.02, seed=51).pairs(512)
        res = system.align(pairs, verify=True)
        assert res.pairs_simulated == 512
        assert len(res.results) == 512
        assert res.kernel_seconds > 0

    def test_many_tiny_pairs(self):
        system = tiny_system()
        pairs = [ReadPair(pattern="A", text="A")] * 40
        res = system.align(pairs, verify=True)
        assert all(score == 0 for _i, score, _c in res.results)

    def test_empty_sequences_through_the_stack(self):
        system = tiny_system()
        pairs = [
            ReadPair(pattern="", text=""),
            ReadPair(pattern="", text="AC"),
            ReadPair(pattern="AC", text=""),
        ]
        res = system.align(pairs, verify=True)
        scores = {i: s for i, s, _c in res.results}
        assert scores[0] == 0
        assert scores[1] == PEN.gap_cost(2)
        assert scores[2] == PEN.gap_cost(2)

    def test_mixed_lengths_within_slots(self):
        system = tiny_system()
        gen = ReadPairGenerator(length=30, error_rate=0.05, seed=52)
        pairs = gen.pairs(10) + [ReadPair(pattern="ACG", text="ACGT")]
        res = system.align(pairs, verify=True)
        assert len(res.results) == 11