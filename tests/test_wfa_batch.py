"""Differential tests: the vectorized batch engine vs the scalar oracle.

The batch engine (:mod:`repro.core.wfa_batch`) is an accelerated
replica of :class:`~repro.core.wfa.WfaEngine`; the contract is
*bit-exact equality*, not approximate agreement — scores, CIGARs, the
full :class:`~repro.core.wavefront.WfaCounters` (including the
``wavefront_log`` the PIM timing model replays), error messages, and
every byte of the serve layer's responses must be unchanged when the
``engine="vector"`` knob is flipped.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest
from conftest import any_penalties, similar_pair
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    EditPenalties,
    TwoPieceAffinePenalties,
    WavefrontAligner,
)
from repro.core.span import AlignmentSpan
from repro.core.wfa_batch import BatchWfaEngine, align_batch
from repro.data.generator import ReadPairGenerator
from repro.errors import AlignmentError
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan
from repro.pim.kernel import KernelConfig, KernelError
from repro.pim.system import PimSystem
from repro.serve import LoadgenConfig, ServiceConfig, build_service, run_load

all_penalties = st.one_of(
    any_penalties,
    st.just(TwoPieceAffinePenalties()),
    st.just(
        TwoPieceAffinePenalties(
            mismatch=5, gap_open1=4, gap_extend1=3, gap_open2=12, gap_extend2=1
        )
    ),
)

pair_batches = st.lists(
    similar_pair(max_len=24, max_edits=5), min_size=1, max_size=6
)


class TestDifferentialEquality:
    @given(pairs=pair_batches, pen=all_penalties)
    def test_full_mode_matches_scalar(self, pairs, pen):
        aligner = WavefrontAligner(penalties=pen)
        scalar = [aligner.align(p, t) for p, t in pairs]
        vector = align_batch(pairs, pen, validate=True)
        for s, v in zip(scalar, vector):
            assert s.score == v.score
            assert str(s.cigar) == str(v.cigar)
            assert s.counters == v.counters  # includes wavefront_log

    @given(pairs=pair_batches, pen=all_penalties)
    def test_score_only_matches_scalar(self, pairs, pen):
        aligner = WavefrontAligner(penalties=pen)
        scalar = [aligner.align(p, t, score_only=True) for p, t in pairs]
        vector = align_batch(pairs, pen, score_only=True)
        for s, v in zip(scalar, vector):
            assert s.score == v.score
            assert s.counters == v.counters  # low-memory accounting too

    @given(pair=similar_pair(max_len=40, max_edits=6), pen=all_penalties)
    def test_batch_of_one(self, pair, pen):
        aligner = WavefrontAligner(penalties=pen)
        s = aligner.align(*pair)
        (v,) = align_batch([pair], pen)
        assert (s.score, str(s.cigar), s.counters) == (
            v.score,
            str(v.cigar),
            v.counters,
        )

    def test_ragged_batch_with_empty_sequences(self):
        pairs = [
            ("", ""),
            ("", "ACGT"),
            ("ACGT", ""),
            ("A", "ACGTACGTACGT"),
            ("ACGTACGTACGTACGTACGT", "ACG"),
            ("ACGT", "ACGT"),
        ]
        pen = EditPenalties()
        aligner = WavefrontAligner(penalties=pen)
        scalar = [aligner.align(p, t) for p, t in pairs]
        vector = align_batch(pairs, pen, validate=True)
        for s, v in zip(scalar, vector):
            assert (s.score, str(s.cigar), s.counters) == (
                v.score,
                str(v.cigar),
                v.counters,
            )

    def test_empty_batch(self):
        assert align_batch([], EditPenalties()) == []


class TestFailureParity:
    def test_score_cap_message_and_index_match_scalar(self):
        pairs = [("AAAA", "AAAA"), ("AAAA", "TTTT"), ("ACGT", "ACGA")]
        aligner = WavefrontAligner(penalties=EditPenalties(), max_score=2)
        scalar_msg = None
        for p, t in pairs:
            try:
                aligner.align(p, t)
            except AlignmentError as exc:
                scalar_msg = str(exc)
                break
        with pytest.raises(AlignmentError) as excinfo:
            align_batch(pairs, EditPenalties(), max_score=2)
        assert str(excinfo.value) == scalar_msg

    def test_pairs_after_a_failure_still_complete(self):
        # The batch runs every pair to its own end; only the surfaced
        # exception follows scalar loop order.
        engine = BatchWfaEngine(
            [("AAAA", "TTTT"), ("ACGT", "ACGT")],
            EditPenalties(),
            max_score=2,
        )
        failed, ok = engine.run()
        assert failed.error is not None and failed.final_score is None
        assert ok.error is None and ok.final_score == 0

    def test_ends_free_span_rejected(self):
        with pytest.raises(AlignmentError, match="global spans only"):
            BatchWfaEngine(
                [("ACGT", "ACGT")],
                EditPenalties(),
                span=AlignmentSpan(text_begin_free=4),
            )


def run_system(engine: str):
    cfg = PimSystemConfig(
        num_dpus=4, num_ranks=1, tasklets=2, num_simulated_dpus=4
    )
    kc = KernelConfig(
        penalties=EditPenalties(), max_read_len=64, max_edits=4, engine=engine
    )
    system = PimSystem(cfg, kc)
    pairs = ReadPairGenerator(length=48, error_rate=0.03, seed=21).pairs(32)
    return system.align(pairs, collect_results=True)


class TestKernelEngineKnob:
    def test_pim_system_results_identical(self):
        scalar = run_system("scalar")
        vector = run_system("vector")
        assert [(i, s, str(c)) for i, s, c in scalar.results] == [
            (i, s, str(c)) for i, s, c in vector.results
        ]

    def test_unknown_engine_rejected(self):
        with pytest.raises(KernelError, match="engine must be"):
            KernelConfig(penalties=EditPenalties(), engine="simd")


class TestServeByteIdentity:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_report_recovery_and_metrics_identical(self, workers):
        def replay(engine: str):
            service = build_service(
                num_dpus=2,
                tasklets=2,
                workers=workers,
                max_read_len=16,
                max_edits=3,
                config=ServiceConfig(
                    max_batch_pairs=16,
                    max_wait_s=1e-3,
                    max_queue_pairs=4096,
                    cache_pairs=8,
                ),
                fault_plan=FaultPlan(
                    deaths=(DpuDeath(dpu_id=1, attempts=(0,)),)
                ),
                engine=engine,
            )
            report = run_load(
                service,
                LoadgenConfig(requests=40, rate=10000.0, length=10, seed=5),
            )
            return (
                report.to_jsonl(),
                json.dumps(report.recovery, sort_keys=True),
                json.dumps(service.metrics_snapshot(), sort_keys=True),
            )

        scalar = replay("scalar")
        vector = replay("vector")
        assert scalar == vector
        # the injected DPU death must actually have exercised recovery
        assert json.loads(scalar[1])


class TestBenchSmoke:
    def test_bench_batch_engine_smoke(self, tmp_path):
        bench_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_batch_engine.py"
        )
        spec = importlib.util.spec_from_file_location(
            "bench_batch_engine", bench_path
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        out = tmp_path / "bench.json"
        rc = mod.main(
            [
                "--batch-sizes",
                "1,4",
                "--length",
                "24",
                "--error-rate",
                "0.05",
                "--repeats",
                "1",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert record["schema"] == "repro.bench.artifact/v1"
        assert record["benchmark"] == "BENCH_batch_engine"
        assert record["config"]["batch_sizes"] == [1, 4]
        assert record["seed"] == record["config"]["seed"]
        assert len(record["config_fingerprint"]) == 16
        assert {r["mode"] for r in record["runs"]} == {"score_only", "full"}
        assert len(record["runs"]) == 4
        for row in record["runs"]:
            assert row["identical"] is True
            assert row["vector_pairs_per_second"] > 0
            assert row["scalar_pairs_per_second"] > 0
        assert record["headline_speedup"] > 0
