"""Tests for alignment spans (global / semi-global / ends-free)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gotoh_endsfree import gotoh_endsfree_score
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.core.span import AlignmentSpan
from repro.errors import AlignmentError

from conftest import dna_seq

PEN = AffinePenalties(4, 6, 2)

spans = st.builds(
    AlignmentSpan,
    pattern_begin_free=st.sampled_from([0, 2, 5, 100]),
    pattern_end_free=st.sampled_from([0, 2, 5, 100]),
    text_begin_free=st.sampled_from([0, 3, 10, 100]),
    text_end_free=st.sampled_from([0, 3, 10, 100]),
)


class TestSpanModel:
    def test_global_default(self):
        assert AlignmentSpan().is_global
        assert AlignmentSpan.global_().is_global

    def test_semiglobal_preset(self):
        s = AlignmentSpan.semiglobal()
        assert s.text_begin_free > 10**6 and s.text_end_free > 10**6
        assert s.pattern_begin_free == 0 and s.pattern_end_free == 0
        assert not s.is_global

    def test_ends_free_preset(self):
        s = AlignmentSpan.ends_free(pattern_free=3, text_free=7)
        assert s.pattern_begin_free == s.pattern_end_free == 3
        assert s.text_begin_free == s.text_end_free == 7

    def test_clamped(self):
        s = AlignmentSpan.semiglobal().clamped(10, 20)
        assert s.text_begin_free == 20
        assert s.pattern_begin_free == 0

    def test_negative_rejected(self):
        with pytest.raises(AlignmentError):
            AlignmentSpan(pattern_begin_free=-1)


class TestSemiglobalMapping:
    """The read-mapping use case: find the pattern inside a longer text."""

    def test_exact_substring_scores_zero(self):
        pattern = "ACGTACGTGG"
        text = "TTTT" + pattern + "CCCC"
        al = WavefrontAligner(PEN, span=AlignmentSpan.semiglobal())
        r = al.align(pattern, text)
        assert r.score == 0
        assert r.text_start == 4
        assert r.text_end == 4 + len(pattern)
        assert r.pattern_start == 0 and r.pattern_end == len(pattern)
        assert str(r.cigar) == f"{len(pattern)}M"

    def test_substring_with_one_mismatch(self):
        pattern = "ACGTACGTGG"
        inner = pattern[:4] + "T" + pattern[5:]
        text = "GG" + inner + "AAA"
        al = WavefrontAligner(PEN, span=AlignmentSpan.semiglobal())
        r = al.align(pattern, text)
        assert r.score == 4
        assert r.cigar.counts()["X"] == 1

    def test_global_would_be_much_worse(self):
        pattern = "ACGTACGTGG"
        text = "TTTT" + pattern + "CCCC"
        semi = WavefrontAligner(PEN, span=AlignmentSpan.semiglobal()).score(
            pattern, text
        )
        glob = WavefrontAligner(PEN).score(pattern, text)
        assert semi == 0
        assert glob >= PEN.gap_cost(4)

    def test_pattern_at_text_start(self):
        pattern = "ACGTAC"
        text = pattern + "GGGG"
        r = WavefrontAligner(PEN, span=AlignmentSpan.semiglobal()).align(pattern, text)
        assert r.score == 0 and r.text_start == 0


class TestEndsFree:
    def test_free_pattern_prefix(self):
        # pattern has 3 extra leading chars the span forgives
        span = AlignmentSpan(pattern_begin_free=3)
        r = WavefrontAligner(PEN, span=span).align("TTTACGTACGT", "ACGTACGT")
        assert r.score == 0
        assert r.pattern_start == 3

    def test_free_pattern_suffix(self):
        span = AlignmentSpan(pattern_end_free=3)
        r = WavefrontAligner(PEN, span=span).align("ACGTACGTTTT", "ACGTACGT")
        assert r.score == 0
        assert r.pattern_end == 8

    def test_allowance_is_a_hard_limit(self):
        # 4 extra chars, only 3 free: must pay for at least one
        span = AlignmentSpan(pattern_begin_free=3)
        r = WavefrontAligner(PEN, span=span).align("TTTTACGTACGT", "ACGTACGT")
        assert r.score > 0

    def test_score_only_mode(self):
        span = AlignmentSpan.semiglobal()
        al = WavefrontAligner(PEN, span=span)
        p, t = "ACGTAC", "GGACGTACGG"
        assert al.align(p, t, score_only=True).score == al.align(p, t).score == 0

    def test_empty_pattern_semiglobal(self):
        r = WavefrontAligner(PEN, span=AlignmentSpan.semiglobal()).align("", "ACGT")
        assert r.score == 0
        assert r.cigar.columns() == 0


class TestSpanWithHeuristics:
    def test_semiglobal_with_adaptive_reduction(self):
        import random

        from repro.core.heuristics import AdaptiveReduction

        rng = random.Random(60)
        for _ in range(10):
            pattern = "".join(rng.choice("ACGT") for _ in range(60))
            text = (
                "".join(rng.choice("ACGT") for _ in range(30))
                + pattern
                + "".join(rng.choice("ACGT") for _ in range(30))
            )
            span = AlignmentSpan.semiglobal()
            exact = WavefrontAligner(PEN, span=span).score(pattern, text)
            heur = WavefrontAligner(
                PEN, span=span, heuristic=AdaptiveReduction()
            ).align(pattern, text)
            assert heur.score >= exact
            heur.cigar.validate(
                pattern[heur.pattern_start : heur.pattern_end],
                text[heur.text_start : heur.text_end],
            )

    def test_semiglobal_score_only_low_memory(self):
        span = AlignmentSpan.semiglobal()
        al = WavefrontAligner(PEN, span=span)
        p = "ACGTACGTAC"
        t = "TT" + p + "GG"
        r = al.align(p, t, score_only=True)
        assert r.score == 0
        assert r.cigar is None


class TestOracle:
    @settings(max_examples=80, deadline=None)
    @given(p=dna_seq, t=dna_seq, span=spans)
    def test_matches_endsfree_dp_affine(self, p, t, span):
        wfa = WavefrontAligner(PEN, span=span).score(p, t)
        assert wfa == gotoh_endsfree_score(p, t, PEN, span)

    @settings(max_examples=50, deadline=None)
    @given(p=dna_seq, t=dna_seq, span=spans)
    def test_matches_endsfree_dp_edit(self, p, t, span):
        pen = EditPenalties()
        wfa = WavefrontAligner(pen, span=span).score(p, t)
        assert wfa == gotoh_endsfree_score(p, t, pen, span)

    @settings(max_examples=60, deadline=None)
    @given(p=dna_seq, t=dna_seq, span=spans)
    def test_cigar_valid_on_aligned_region(self, p, t, span):
        r = WavefrontAligner(PEN, span=span).align(p, t)
        r.cigar.validate(
            p[r.pattern_start : r.pattern_end], t[r.text_start : r.text_end]
        )
        assert r.cigar.score(PEN) == r.score
        clamped = span.clamped(len(p), len(t))
        assert r.pattern_start <= clamped.pattern_begin_free
        assert len(p) - r.pattern_end <= clamped.pattern_end_free
        assert r.text_start <= clamped.text_begin_free
        assert len(t) - r.text_end <= clamped.text_end_free

    @settings(max_examples=40, deadline=None)
    @given(p=dna_seq, t=dna_seq, span=spans)
    def test_freer_spans_never_hurt(self, p, t, span):
        free = WavefrontAligner(PEN, span=span).score(p, t)
        glob = WavefrontAligner(PEN).score(p, t)
        assert free <= glob

    @settings(max_examples=40, deadline=None)
    @given(p=dna_seq, t=dna_seq)
    def test_global_span_identical_to_default(self, p, t):
        r1 = WavefrontAligner(PEN).align(p, t)
        r2 = WavefrontAligner(PEN, span=AlignmentSpan.global_()).align(p, t)
        assert r1.score == r2.score
        assert r1.cigar == r2.cigar
        assert r2.aligned_region() == (0, len(p), 0, len(t))
