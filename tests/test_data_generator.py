"""Tests for the synthetic read-pair generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bitparallel import levenshtein_dp
from repro.data.generator import (
    ReadPair,
    ReadPairGenerator,
    mutate_sequence,
    random_sequence,
    total_bases,
)
from repro.errors import DataError


class TestRandomSequence:
    def test_length_and_alphabet(self):
        rng = random.Random(0)
        s = random_sequence(500, rng)
        assert len(s) == 500
        assert set(s) <= set("ACGT")

    def test_zero_length(self):
        assert random_sequence(0, random.Random(0)) == ""

    def test_negative_rejected(self):
        with pytest.raises(DataError):
            random_sequence(-1, random.Random(0))

    def test_deterministic_given_seed(self):
        a = random_sequence(100, random.Random(42))
        b = random_sequence(100, random.Random(42))
        assert a == b


class TestMutateSequence:
    def test_zero_errors_is_identity(self):
        assert mutate_sequence("ACGT", 0, random.Random(0)) == "ACGT"

    def test_negative_rejected(self):
        with pytest.raises(DataError):
            mutate_sequence("ACGT", -1, random.Random(0))

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        length=st.integers(0, 60),
        errors=st.integers(0, 10),
    )
    def test_edit_distance_bounded_by_budget(self, seed, length, errors):
        """THE generator guarantee: distance(orig, mutated) <= edits applied."""
        rng = random.Random(seed)
        seq = random_sequence(length, rng)
        mutated = mutate_sequence(seq, errors, rng)
        assert levenshtein_dp(seq, mutated) <= errors

    def test_substitution_changes_character(self):
        # with a 2-letter alphabet a substitution must flip the char
        rng = random.Random(5)
        for _ in range(50):
            out = mutate_sequence("A" * 10, 1, rng, alphabet="AT")
            assert levenshtein_dp("A" * 10, out) <= 1


class TestReadPairGenerator:
    def test_defaults_match_paper(self):
        gen = ReadPairGenerator()
        assert gen.length == 100
        assert gen.error_rate == 0.02
        assert gen.edit_budget == 2

    def test_exact_model_edit_budget(self):
        gen = ReadPairGenerator(length=100, error_rate=0.04, seed=3)
        for pair in gen.pairs(30):
            assert pair.requested_errors == 4
            assert levenshtein_dp(pair.pattern, pair.text) <= 4

    def test_uniform_model_within_budget(self):
        gen = ReadPairGenerator(
            length=100, error_rate=0.04, seed=3, error_model="uniform"
        )
        seen = set()
        for pair in gen.pairs(60):
            assert 0 <= pair.requested_errors <= 4
            seen.add(pair.requested_errors)
        assert len(seen) > 1  # actually varies

    def test_binomial_model(self):
        gen = ReadPairGenerator(
            length=100, error_rate=0.05, seed=3, error_model="binomial"
        )
        counts = [p.requested_errors for p in gen.pairs(100)]
        mean = sum(counts) / len(counts)
        assert 2.0 < mean < 9.0  # ~Binomial(100, .05), loose bounds

    def test_deterministic_stream(self):
        a = ReadPairGenerator(seed=9).pairs(10)
        b = ReadPairGenerator(seed=9).pairs(10)
        assert a == b

    def test_different_seeds_differ(self):
        a = ReadPairGenerator(seed=1).pairs(5)
        b = ReadPairGenerator(seed=2).pairs(5)
        assert a != b

    def test_stream_matches_pairs(self):
        gen1 = ReadPairGenerator(seed=4)
        gen2 = ReadPairGenerator(seed=4)
        assert list(gen2.stream(7)) == gen1.pairs(7)

    def test_invalid_configs(self):
        with pytest.raises(DataError):
            ReadPairGenerator(length=0)
        with pytest.raises(DataError):
            ReadPairGenerator(error_rate=1.5)
        with pytest.raises(DataError):
            ReadPairGenerator(error_model="weird")
        with pytest.raises(DataError):
            ReadPairGenerator(alphabet="A")
        with pytest.raises(DataError):
            ReadPairGenerator().pairs(-1)

    def test_read_pair_helpers(self):
        pair = ReadPair(pattern="ACGT", text="ACGTT")
        assert pair.max_length() == 5
        assert total_bases([pair, pair]) == 18
