"""Fault injection + host-side recovery (repro.pim.faults)."""

from __future__ import annotations

import random

import pytest

from repro.core.penalties import EditPenalties
from repro.data.generator import ReadPair, ReadPairGenerator
from repro.errors import (
    ConfigError,
    CorruptResultError,
    DpuFailure,
    FaultError,
    MemoryFault,
    TaskletStallError,
    TransferError,
)
from repro.obs.metrics import MetricsRegistry
from repro.pim.config import PimSystemConfig
from repro.pim.dpu import Dpu
from repro.pim.faults import (
    DpuDeath,
    FaultPlan,
    JobRecoveryRecord,
    MramCorruption,
    RecoveryReport,
    RetryPolicy,
    TaskletStall,
    TransferTruncation,
    spare_placements,
)
from repro.pim.host_api import dpu_alloc
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import MramLayout
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem
from repro.pim.transfer import HostTransferEngine


def make_layout(kc: KernelConfig, per_dpu: int, tasklets: int) -> MramLayout:
    return MramLayout.plan(
        num_pairs=per_dpu,
        max_pattern_len=kc.max_seq_len,
        max_text_len=kc.max_seq_len,
        max_cigar_ops=kc.max_cigar_ops,
        tasklets=tasklets,
        metadata_bytes_per_tasklet=kc.metadata_peak_bytes(),
    )


def small_system(fault_plan=None, retry_policy=None, workers=1) -> PimSystem:
    return PimSystem(
        PimSystemConfig(
            num_dpus=4,
            num_ranks=1,
            tasklets=4,
            num_simulated_dpus=4,
            workers=workers,
        ),
        kernel_config=KernelConfig(
            penalties=EditPenalties(), max_read_len=40, max_edits=4
        ),
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )


def workload(n: int = 40) -> list[ReadPair]:
    return ReadPairGenerator(length=32, error_rate=0.05, seed=7).pairs(n)


def result_key(run) -> list[tuple[int, int, str]]:
    return sorted((i, s, str(c)) for i, s, c in run.results)


class TestPlanValidation:
    def test_bad_corruption_region(self):
        with pytest.raises(ConfigError):
            MramCorruption(dpu_id=0, region="wram")

    def test_bad_corruption_bits(self):
        with pytest.raises(ConfigError):
            MramCorruption(dpu_id=0, num_bits=0)

    def test_bad_truncation_direction(self):
        with pytest.raises(ConfigError):
            TransferTruncation(dpu_id=0, direction="sideways")

    def test_negative_keep_bytes(self):
        with pytest.raises(ConfigError):
            TransferTruncation(dpu_id=0, keep_bytes=-1)

    def test_negative_dma_budget(self):
        with pytest.raises(ConfigError):
            TaskletStall(dpu_id=0, dma_budget=-1)

    def test_targets_and_faulty_dpus(self):
        plan = FaultPlan(
            deaths=(DpuDeath(dpu_id=3),),
            corruptions=(MramCorruption(dpu_id=1),),
        )
        assert plan.targets(3) and plan.targets(1)
        assert not plan.targets(0)
        assert plan.faulty_dpus() == (1, 3)
        assert plan.always_dead(3)
        assert not plan.always_dead(1)

    def test_to_dict_is_json_ready(self):
        import json

        plan = FaultPlan(
            seed=9,
            deaths=(DpuDeath(dpu_id=0, attempts=(0, 1)),),
            stalls=(TaskletStall(dpu_id=2, dma_budget=5),),
        )
        doc = json.loads(json.dumps(plan.to_dict()))
        assert doc["seed"] == 9
        assert doc["deaths"][0]["dpu_id"] == 0


class TestFlipBits:
    def test_deterministic_for_seed(self):
        from repro.pim.memory import SimMemory

        a, b = SimMemory(64), SimMemory(64)
        pos_a = a.flip_bits(8, 16, 4, random.Random(5))
        pos_b = b.flip_bits(8, 16, 4, random.Random(5))
        assert pos_a == pos_b
        assert a.read(0, 64) == b.read(0, 64)

    def test_flips_inside_window_only(self):
        from repro.pim.memory import SimMemory

        mem = SimMemory(64)
        positions = mem.flip_bits(16, 8, 6, random.Random(1))
        assert all(16 * 8 <= p < 24 * 8 for p in positions)
        assert mem.read(0, 16) == b"\x00" * 16
        assert mem.read(24, 40) == b"\x00" * 40

    def test_rejects_empty_window(self):
        from repro.pim.memory import SimMemory

        with pytest.raises(MemoryFault):
            SimMemory(64).flip_bits(0, 0, 1, random.Random(0))


def raw_job(plan: FaultPlan, pairs: list[ReadPair], dpu_id: int = 0):
    """A DpuJob on the *unrecovered* path (run_dpu_job raises faults)."""
    from repro.pim.parallel import DpuJob

    system = small_system()
    return DpuJob(
        dpu_id=dpu_id,
        layout=system.plan_layout(len(pairs)),
        dpu_config=system.config.dpu,
        transfer_config=system.config.transfer,
        kernel_config=system.kernel_config,
        metadata_policy=system.config.metadata_policy,
        tasklets=system.config.tasklets,
        pairs=tuple(pairs),
        fault_plan=plan,
        verify=True,
    )


class TestTypedErrors:
    """Faults surface as typed errors — never a silently wrong alignment.

    The unrecovered execution path (``run_dpu_job``) propagates them;
    the recovery layer catches exactly this subtree and converts it
    into retries/requeues/abandonment (``TestRecovery``).
    """

    def test_dead_dpu_raises_dpu_failure(self):
        from repro.pim.parallel import run_dpu_job

        plan = FaultPlan(deaths=(DpuDeath(dpu_id=0),))
        with pytest.raises(DpuFailure) as err:
            run_dpu_job(raw_job(plan, workload(8)))
        assert err.value.dpu_id == 0

    def test_corrupt_header_raises_corrupt_result_error(self):
        from repro.pim.parallel import run_dpu_job

        plan = FaultPlan(
            seed=2,
            corruptions=(MramCorruption(dpu_id=0, region="header", num_bits=8),),
        )
        with pytest.raises(CorruptResultError):
            run_dpu_job(raw_job(plan, workload(8)))

    def test_output_corruption_raises_corrupt_result_error(self):
        from repro.pim.parallel import run_dpu_job

        plan = FaultPlan(
            seed=6,
            corruptions=(MramCorruption(dpu_id=0, region="output", num_bits=6),),
        )
        with pytest.raises((CorruptResultError, TransferError)):
            run_dpu_job(raw_job(plan, workload(8)))

    def test_truncated_pull_raises_transfer_error(self):
        from repro.pim.parallel import run_dpu_job

        plan = FaultPlan(
            truncations=(TransferTruncation(dpu_id=0, direction="pull", keep_bytes=8),)
        )
        with pytest.raises(TransferError):
            run_dpu_job(raw_job(plan, workload(8)))

    def test_stall_raises_tasklet_stall_error(self):
        from repro.pim.parallel import run_dpu_job

        plan = FaultPlan(stalls=(TaskletStall(dpu_id=0, dma_budget=3),))
        with pytest.raises(TaskletStallError):
            run_dpu_job(raw_job(plan, workload(8)))

    def test_persistent_corruption_requeues_never_lies(self):
        # Header rot pinned to physical DPU 1 on *every* attempt:
        # retrying there keeps failing typed, then the job requeues onto
        # healthy hardware — no bad record ever reaches the caller.
        pairs = workload(16)
        baseline = result_key(small_system().align(pairs))
        plan = FaultPlan(
            seed=2,
            corruptions=(
                MramCorruption(dpu_id=1, region="header", num_bits=8, attempts=None),
            ),
        )
        run = small_system().align(pairs, fault_plan=plan)
        report = run.recovery
        assert report.all_ok
        rec = report.records[1]
        assert rec.requeued and rec.final_placement != 1
        assert "CorruptResultError" in rec.errors
        assert result_key(run) == baseline

    def test_truncated_push_raises_transfer_error(self):
        from repro.pim.config import DpuConfig

        dpu = Dpu(DpuConfig(), dpu_id=0)
        kc = KernelConfig(penalties=EditPenalties(), max_read_len=32, max_edits=4)
        layout = make_layout(kc, per_dpu=4, tasklets=1)
        from repro.pim.config import HostTransferConfig

        engine = HostTransferEngine(HostTransferConfig())
        engine.injector = FaultPlan(
            truncations=(TransferTruncation(dpu_id=0, direction="push", keep_bytes=100),)
        ).injector(0)
        with pytest.raises(TransferError):
            engine.push_batch(dpu, layout, workload(4))

    def test_input_region_corruption_never_silent(self):
        # Corrupting the *input* region changes what the kernel aligns;
        # only worker-side verification against the original batch can
        # catch it.  It must surface as CorruptResultError, not as a
        # plausible-but-wrong alignment.
        pairs = workload(12)
        baseline = result_key(small_system().align(pairs))
        plan = FaultPlan(
            seed=4,
            corruptions=(
                MramCorruption(dpu_id=0, region="input", num_bits=4, attempts=None),
            ),
        )
        run = small_system().align(pairs, fault_plan=plan)
        rec = run.recovery.records[0]
        assert set(rec.errors) == {"CorruptResultError"}
        assert rec.requeued and rec.final_placement != 0
        assert result_key(run) == baseline


class TestRecovery:
    def test_transient_death_retry_is_byte_identical(self):
        """Acceptance pin: a DPU dying mid-run, with retry+requeue, must
        reproduce the fault-free run bit for bit — sequentially and in a
        worker pool."""
        pairs = workload(40)
        baseline = result_key(small_system().align(pairs))
        plan = FaultPlan(seed=3, deaths=(DpuDeath(dpu_id=2, attempts=(0, 1)),))
        for workers in (0, 2):
            run = small_system().align(pairs, workers=workers, fault_plan=plan)
            assert result_key(run) == baseline
            assert run.recovery.all_ok
            assert run.recovery.records[2].attempts == 3
            assert run.recovery.faults_seen == 2

    def test_persistent_death_requeues_byte_identical(self):
        pairs = workload(40)
        baseline = result_key(small_system().align(pairs))
        plan = FaultPlan(deaths=(DpuDeath(dpu_id=1),))
        run = small_system().align(pairs, fault_plan=plan)
        assert result_key(run) == baseline
        rec = run.recovery.records[1]
        assert rec.requeued and not rec.abandoned
        assert rec.final_placement != 1
        assert rec.final_placement in spare_placements(1, range(4), plan)

    def test_mixed_transient_faults_recover(self):
        pairs = workload(40)
        baseline = result_key(small_system().align(pairs))
        plan = FaultPlan(
            seed=11,
            corruptions=(MramCorruption(dpu_id=1, region="output", num_bits=3),),
            truncations=(TransferTruncation(dpu_id=0, direction="pull", keep_bytes=16),),
            stalls=(TaskletStall(dpu_id=3, dma_budget=5),),
        )
        run = small_system().align(pairs, workers=2, fault_plan=plan)
        assert result_key(run) == baseline
        assert run.recovery.all_ok
        assert run.recovery.faults_seen == 3

    def test_all_dead_abandons_everything(self):
        plan = FaultPlan(deaths=tuple(DpuDeath(dpu_id=d) for d in range(4)))
        run = small_system().align(workload(20), fault_plan=plan)
        assert run.results == []
        assert not run.recovery.all_ok
        assert sorted(run.recovery.abandoned_pairs) == list(range(20))
        assert run.recovery.completed_pairs == []

    def test_degradation_report_partitions_pairs(self):
        plan = FaultPlan(
            deaths=(DpuDeath(dpu_id=0),),
            corruptions=(
                MramCorruption(dpu_id=2, region="header", num_bits=8, attempts=None),
            ),
        )
        # Kill requeueing so DPU 2's pairs are really abandoned.
        run = small_system().align(
            workload(20),
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, max_requeues=0),
        )
        report = run.recovery
        everything = (
            set(report.completed_pairs)
            | set(report.rerun_pairs)
            | set(report.abandoned_pairs)
        )
        assert set(report.completed_pairs).isdisjoint(report.abandoned_pairs)
        assert set(report.rerun_pairs) <= set(report.completed_pairs) | set(
            report.abandoned_pairs
        )
        assert everything == set(range(20))
        doc = report.to_dict()
        assert doc["schema"] == "repro.pim.recovery/v1"
        assert doc["abandoned_pairs"] == sorted(report.abandoned_pairs)

    def test_fault_metrics_land_in_registry(self):
        registry = MetricsRegistry()
        plan = FaultPlan(seed=3, deaths=(DpuDeath(dpu_id=2, attempts=(0,)),))
        run = small_system().align(workload(16), fault_plan=plan)
        run.recovery.count_into(registry)
        assert registry.counter("pim_fault_errors_total").value(kind="DpuFailure") == 1
        assert registry.counter("pim_job_retries_total").value() == 1
        assert registry.counter("pim_pairs_abandoned_total").value() == 0

    def test_backoff_is_modeled_not_slept(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.5, backoff_factor=2.0)
        assert policy.backoff_seconds(0) == 0.5
        assert policy.backoff_seconds(2) == 2.0
        plan = FaultPlan(deaths=(DpuDeath(dpu_id=0, attempts=(0,)),))
        import time

        t0 = time.monotonic()
        run = small_system().align(workload(8), fault_plan=plan, retry_policy=policy)
        assert time.monotonic() - t0 < 0.5  # never actually slept
        assert run.recovery.backoff_seconds == 0.5


class TestReportAlgebra:
    def test_merge_and_shift(self):
        a = RecoveryReport(
            records=[JobRecoveryRecord(dpu_id=0, num_pairs=2)],
            completed_pairs=[0, 1],
        )
        b = RecoveryReport(
            records=[JobRecoveryRecord(dpu_id=0, num_pairs=2, abandoned=True)],
            abandoned_pairs=[0, 1],
        )
        b.shift_pairs(2)
        a.merge(b)
        assert a.completed_pairs == [0, 1]
        assert a.abandoned_pairs == [2, 3]
        assert not a.all_ok


class TestSchedulerFaults:
    def test_multi_round_run_merges_reports(self):
        pairs = workload(30)
        system = small_system()
        baseline = BatchScheduler(system).run(pairs, pairs_per_round=10,
                                              collect_results=True)
        plan = FaultPlan(seed=5, deaths=(DpuDeath(dpu_id=1, attempts=(0,)),))
        run = BatchScheduler(small_system()).run(
            pairs, pairs_per_round=10, collect_results=True, fault_plan=plan
        )
        assert run.recovery is not None
        # every round saw DPU 1 die once on attempt 0
        assert run.recovery.faults_seen == 3
        assert sorted(run.recovery.completed_pairs) == list(range(30))
        flat = lambda r: sorted(
            (i, s, str(c))
            for rnd_i, rnd in enumerate(r.per_round)
            for i, s, c in [(i + 10 * rnd_i, s, c) for i, s, c in rnd.results]
        )
        assert flat(run) == flat(baseline)


class TestHostApiFaults:
    def _layout_and_batches(self, kernel, n_dpus=2, batch=4):
        layout = make_layout(kernel.config, per_dpu=batch, tasklets=2)
        gen = ReadPairGenerator(length=24, error_rate=0.05, seed=3)
        return layout, [gen.pairs(batch) for _ in range(n_dpus)]

    def test_dpu_set_surfaces_typed_errors(self):
        kernel = WfaDpuKernel(
            KernelConfig(penalties=EditPenalties(), max_read_len=24, max_edits=4)
        )
        plan = FaultPlan(deaths=(DpuDeath(dpu_id=1),))
        with dpu_alloc(2, fault_plan=plan) as dpu_set:
            dpu_set.load(kernel)
            layout, batches = self._layout_and_batches(kernel)
            dpu_set.copy_to(layout, batches)
            with pytest.raises(DpuFailure):
                dpu_set.launch(tasklets=2)

    def test_dpu_set_pull_truncation(self):
        kernel = WfaDpuKernel(
            KernelConfig(penalties=EditPenalties(), max_read_len=24, max_edits=4)
        )
        plan = FaultPlan(
            truncations=(TransferTruncation(dpu_id=0, direction="pull", keep_bytes=8),)
        )
        with dpu_alloc(2, fault_plan=plan) as dpu_set:
            dpu_set.load(kernel)
            layout, batches = self._layout_and_batches(kernel)
            dpu_set.copy_to(layout, batches)
            dpu_set.launch(tasklets=2)
            with pytest.raises(TransferError):
                dpu_set.copy_from()

    def test_fault_free_plan_changes_nothing(self):
        kernel = WfaDpuKernel(
            KernelConfig(penalties=EditPenalties(), max_read_len=24, max_edits=4)
        )
        layout, batches = self._layout_and_batches(kernel)
        outputs = []
        for plan in (None, FaultPlan(deaths=(DpuDeath(dpu_id=7),))):
            with dpu_alloc(2, fault_plan=plan) as dpu_set:
                dpu_set.load(kernel)
                dpu_set.copy_to(layout, batches)
                dpu_set.launch(tasklets=2)
                outputs.append(
                    [
                        [(s, str(c)) for s, c in per_dpu]
                        for per_dpu in dpu_set.copy_from()
                    ]
                )
        assert outputs[0] == outputs[1]


class TestErrorTaxonomy:
    def test_fault_subtree(self):
        for cls in (DpuFailure, TransferError, CorruptResultError, TaskletStallError):
            assert issubclass(cls, FaultError)

    def test_dpu_id_in_message(self):
        err = DpuFailure("refused to boot", dpu_id=17)
        assert "DPU 17" in str(err)
        assert err.dpu_id == 17


class TestMergedTotalsNoDoubleCount:
    """Regression pins for merged multi-round recovery accounting.

    ``RecoveryReport.faults_seen`` / ``backoff_seconds`` are recomputed
    properties over the per-job records, so a merge across scheduler
    rounds must contribute each round's overhead exactly once — and the
    terminal failure of a job (abandonment, or the last failure before a
    requeue succeeds) must not charge a backoff wait nobody performed.
    """

    def test_two_round_transient_death_pins_merged_totals(self):
        pairs = workload(20)
        policy = RetryPolicy(
            max_attempts=3, backoff_base_s=0.25, backoff_factor=2.0
        )
        plan = FaultPlan(seed=2, deaths=(DpuDeath(dpu_id=1, attempts=(0,)),))
        run = BatchScheduler(small_system()).run(
            pairs,
            pairs_per_round=10,
            collect_results=True,
            fault_plan=plan,
            retry_policy=policy,
        )
        rec = run.recovery
        # one first-attempt death per round, two rounds: exactly two
        # faults, each followed by one retry that waited one base backoff
        assert rec.faults_seen == 2
        assert rec.backoff_seconds == pytest.approx(2 * 0.25)
        failed = [r for r in rec.records if r.errors]
        assert [r.dpu_id for r in failed] == [1, 1]
        assert all(r.attempts == 2 for r in failed)
        assert all(r.attempts_log == ((1, "DpuFailure"),) for r in failed)
        assert sorted(rec.completed_pairs) == list(range(20))

    def test_terminal_failure_charges_no_backoff(self):
        # Whole fleet dead, no requeues: each job fails max_attempts=2
        # times and abandons.  Only the first failure is followed by a
        # retry, so exactly one backoff wait per job is charged — the
        # terminal failure waits for nothing.
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.5, max_requeues=0)
        plan = FaultPlan(deaths=tuple(DpuDeath(dpu_id=d) for d in range(4)))
        run = small_system().align(workload(8), fault_plan=plan, retry_policy=policy)
        rec = run.recovery
        assert not rec.all_ok
        assert rec.faults_seen == 4 * 2
        assert rec.backoff_seconds == pytest.approx(4 * 0.5)

    def test_two_round_stall_pins_watchdog_totals(self):
        pairs = workload(20)
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=0.1, launch_watchdog_s=0.02
        )
        plan = FaultPlan(
            seed=9, stalls=(TaskletStall(dpu_id=3, dma_budget=2, attempts=(0,)),)
        )
        run = BatchScheduler(small_system()).run(
            pairs,
            pairs_per_round=10,
            collect_results=True,
            fault_plan=plan,
            retry_policy=policy,
        )
        rec = run.recovery
        # one watchdog-detected stall per round; detection latency is
        # charged per stall on top of the backoff before its retry
        assert rec.faults_seen == 2
        assert rec.watchdog_seconds == pytest.approx(2 * 0.02)
        assert rec.backoff_seconds == pytest.approx(2 * 0.1)
        assert rec.overhead_seconds == pytest.approx(2 * 0.12)
        assert sorted(rec.completed_pairs) == list(range(20))

    def test_merge_then_shift_does_not_double_shift(self):
        # the scheduler shifts each round's report by its start offset
        # BEFORE merging; re-merging shifted reports must leave indices
        # stable (the dispatcher does one more rebase on the aggregate)
        a = RecoveryReport(
            records=[JobRecoveryRecord(dpu_id=0, num_pairs=2)],
            completed_pairs=[0, 1],
        )
        b = RecoveryReport(
            records=[JobRecoveryRecord(dpu_id=1, num_pairs=2)],
            completed_pairs=[0, 1],
        )
        b.shift_pairs(2)
        a.merge(b)
        a.shift_pairs(10)  # dispatcher-level rebase of the aggregate
        assert a.completed_pairs == [10, 11, 12, 13]
        assert a.faults_seen == 0
