"""Tests for the repro.qa differential-verification subsystem.

The oracle hierarchy only earns trust if it (a) generates the corpus it
claims to (deterministic, prefix-stable, admissible), (b) catches every
planted failure mode, (c) rejects tampered reports, and (d) shrinks real
failures to minimal reproductions.  These tests plant the bugs on
purpose and check the net catches them.
"""

from __future__ import annotations

import pytest

from repro.baselines.bitparallel import levenshtein_dp
from repro.core.cigar import Cigar
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.errors import QaError
from repro.pim.faults import DpuDeath, FaultPlan
from repro.qa import (
    CorpusConfig,
    QaCase,
    QaConfig,
    check_case,
    generate_corpus,
    reference_answers,
    run_qa,
    shrink_case,
    validate_qa_report,
)
from repro.qa.corpus import KINDS


class TestCorpus:
    def test_deterministic(self):
        a = generate_corpus(30, seed=9)
        b = generate_corpus(30, seed=9)
        assert a == b
        assert a != generate_corpus(30, seed=10)

    def test_prefix_stable(self):
        """Growing --trials only appends cases, never rewrites old ones."""
        assert generate_corpus(60, seed=42)[:25] == generate_corpus(25, seed=42)

    def test_kinds_cycle_and_index(self):
        corpus = generate_corpus(len(KINDS) * 2, seed=1)
        assert [c.kind for c in corpus] == list(KINDS) * 2
        assert [c.index for c in corpus] == list(range(len(corpus)))

    def test_admission_contract(self):
        """Every case fits the kernel budget it will be checked under:
        lengths within max_len, edit distance within max_edits."""
        cfg = CorpusConfig(max_len=32, max_edits=4)
        for case in generate_corpus(100, seed=7, config=cfg):
            assert len(case.pattern) <= cfg.max_len
            assert len(case.text) <= cfg.max_len
            assert levenshtein_dp(case.pattern, case.text) <= cfg.max_edits
            assert set(case.pattern + case.text) <= set(cfg.alphabet)

    def test_config_validation(self):
        with pytest.raises(QaError):
            CorpusConfig(max_len=0).validate()
        with pytest.raises(QaError):
            CorpusConfig(kinds=("random", "nope")).validate()


class TestOracle:
    PENALTIES = EditPenalties()

    def _case(self, pattern="ACGTAC", text="ACGAAC"):
        return QaCase(index=0, kind="random", pattern=pattern, text=text)

    def _truth(self, case):
        ref = reference_answers(case.pattern, case.text, self.PENALTIES)
        return ref["wfa_score"], Cigar.from_string(ref["wfa_cigar"])

    def test_correct_answer_passes(self):
        case = self._case()
        score, cigar = self._truth(case)
        assert check_case(case, score, cigar, self.PENALTIES).ok

    def test_wrong_score_caught(self):
        case = self._case()
        score, cigar = self._truth(case)
        verdict = check_case(case, score + 1, cigar, self.PENALTIES)
        assert not verdict.ok
        assert any("score-reconstruction" in f or "differential" in f
                   for f in verdict.failures)

    def test_invalid_cigar_caught(self):
        case = self._case()
        score, _ = self._truth(case)
        # a CIGAR that does not even span the pair
        verdict = check_case(case, score, Cigar.from_string("1M"), self.PENALTIES)
        assert any(f.startswith("cigar-invalid") for f in verdict.failures)

    def test_rescore_mismatch_caught(self):
        case = self._case("ACGT", "ACGT")
        # 4M replays fine but costs 0; claiming score 3 must fail
        verdict = check_case(case, 3, Cigar.from_string("4M"), self.PENALTIES)
        assert any(f.startswith("score-reconstruction") for f in verdict.failures)
        assert any(f.startswith("differential") for f in verdict.failures)

    def test_missing_result_caught(self):
        verdict = check_case(self._case(), None, None, self.PENALTIES)
        assert not verdict.ok
        assert any(f.startswith("missing") for f in verdict.failures)

    def test_score_without_cigar_caught(self):
        case = self._case()
        score, _ = self._truth(case)
        verdict = check_case(case, score, None, self.PENALTIES)
        assert any(f.startswith("missing") for f in verdict.failures)

    def test_affine_references_agree(self):
        pen = AffinePenalties(mismatch=4, gap_open=6, gap_extend=2)
        ref = reference_answers("ACGTACGT", "ACGACGT", pen)
        assert ref["wfa_score"] == ref["gotoh_score"]
        assert "myers_score" not in ref  # edit-only oracle stays gated


class TestShrinker:
    def test_shrinks_to_minimal_substring(self):
        pattern, text = shrink_case(
            "ACGTAGGA", "TTTTTTTT", lambda p, t: "GG" in p
        )
        assert pattern == "GG"
        assert text == ""

    def test_deterministic(self):
        args = ("ACGTAGGATTTTGG", "ACGT", lambda p, t: "GG" in p)
        assert shrink_case(*args) == shrink_case(*args)

    def test_rejects_passing_input(self):
        with pytest.raises(QaError):
            shrink_case("AAAA", "AAAA", lambda p, t: False)


class TestRunQa:
    def test_end_to_end_clean(self, tmp_path):
        cfg = QaConfig(trials=15, seed=42, workers=0)
        report = run_qa(cfg)
        assert report.all_ok
        assert report.cases_checked == 15 * len(cfg.penalty_models)
        assert report.shrunk == []
        path = report.write(tmp_path / "qa.jsonl")
        summary = validate_qa_report(path)
        assert summary["ok"] is True
        assert summary["disagreements"] == 0

    def test_fault_plan_run_records_recovery(self, tmp_path):
        plan = FaultPlan(seed=42, deaths=(DpuDeath(dpu_id=1, attempts=(0,)),))
        cfg = QaConfig(trials=12, seed=42, workers=0, fault_plan=plan)
        report = run_qa(cfg)
        # the transient death is retried away: zero disagreements AND the
        # degradation report lands in the QA report for every model
        assert report.all_ok
        assert set(report.recovery) == {
            name for name in report.verdicts
        }
        for rec in report.recovery.values():
            assert rec["schema"] == "repro.pim.recovery/v1"
        summary = validate_qa_report(report.write(tmp_path / "qa-faults.jsonl"))
        assert summary["recovery"] is not None

    def test_config_validation(self):
        with pytest.raises(QaError):
            QaConfig(trials=0).validate()
        with pytest.raises(QaError):
            QaConfig(penalty_models=()).validate()


class TestReportValidation:
    def _report_lines(self):
        report = run_qa(QaConfig(trials=5, seed=1, workers=0, shrink=False))
        return report.to_lines()

    def test_accepts_own_output(self):
        assert validate_qa_report(self._report_lines())["ok"] is True

    def test_rejects_foreign_schema(self):
        lines = self._report_lines()
        lines[0]["schema"] = "someone-elses/v9"
        with pytest.raises(QaError, match="bad header"):
            validate_qa_report(lines)

    def test_rejects_flipped_ok_flag(self):
        lines = self._report_lines()
        lines[1]["ok"] = False  # failures stays [] -> inconsistent
        with pytest.raises(QaError, match="disagree"):
            validate_qa_report(lines)

    def test_rejects_dropped_case_keys(self):
        lines = self._report_lines()
        del lines[1]["pim_score"]
        with pytest.raises(QaError, match="missing keys"):
            validate_qa_report(lines)

    def test_rejects_deleted_case(self):
        lines = self._report_lines()
        del lines[1]  # summary count no longer matches
        with pytest.raises(QaError, match="cases"):
            validate_qa_report(lines)

    def test_rejects_cooked_summary(self):
        lines = self._report_lines()
        lines[-1]["disagreements"] = 5
        with pytest.raises(QaError, match="disagreements"):
            validate_qa_report(lines)

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text("")
        with pytest.raises(QaError):
            validate_qa_report(path)

    def test_rejects_non_jsonl(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(QaError, match="JSONL"):
            validate_qa_report(path)
