"""Tests for Myers-Miller linear-space alignment."""

import random

import pytest
from hypothesis import given, settings

from repro.baselines.gotoh import gotoh_align, gotoh_score
from repro.baselines.linear_space import myers_miller_align
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties, LinearPenalties

from conftest import affine_penalties, similar_pair

PEN = AffinePenalties(4, 6, 2)


class TestKnownCases:
    def test_identical(self):
        score, cigar = myers_miller_align("ACGTACGT", "ACGTACGT", PEN)
        assert score == 0
        assert str(cigar) == "8M"

    def test_empty_cases(self):
        assert myers_miller_align("", "", PEN)[0] == 0
        score, cigar = myers_miller_align("", "ACG", PEN)
        assert score == PEN.gap_cost(3) and str(cigar) == "3I"
        score, cigar = myers_miller_align("ACG", "", PEN)
        assert score == PEN.gap_cost(3) and str(cigar) == "3D"

    def test_single_char_pattern(self):
        score, cigar = myers_miller_align("A", "TTATT", PEN)
        cigar.validate("A", "TTATT")
        assert score == gotoh_score("A", "TTATT", PEN)

    def test_single_char_deletion_shape(self):
        # pattern char matches nothing cheaply: deletion + insertions wins
        pen = AffinePenalties(mismatch=50, gap_open=1, gap_extend=1)
        score, cigar = myers_miller_align("A", "TT", pen)
        cigar.validate("A", "TT")
        assert score == gotoh_score("A", "TT", pen)

    def test_mismatch(self):
        score, cigar = myers_miller_align("GATTACA", "GATCACA", PEN)
        assert score == 4
        cigar.validate("GATTACA", "GATCACA")

    def test_gap_crossing_the_middle_row(self):
        """The Myers-Miller special case: a long deletion spanning i*."""
        p = "ACGT" + "T" * 10 + "ACGT"
        t = "ACGTACGT"
        score, cigar = myers_miller_align(p, t, PEN)
        assert score == gotoh_score(p, t, PEN) == PEN.gap_cost(10)
        cigar.validate(p, t)
        # the 10 deletions must form a single run (one opening)
        assert cigar.counts()["D"] == 10
        assert sum(1 for op in cigar if op.op == "D") == 1


class TestOracle:
    @settings(max_examples=100, deadline=None)
    @given(pair=similar_pair(max_len=40, max_edits=10))
    def test_matches_gotoh_default(self, pair):
        p, t = pair
        score, cigar = myers_miller_align(p, t, PEN)
        cigar.validate(p, t)
        assert cigar.score(PEN) == score == gotoh_score(p, t, PEN)

    @settings(max_examples=50, deadline=None)
    @given(pair=similar_pair(max_len=25, max_edits=8), pen=affine_penalties)
    def test_matches_gotoh_random_penalties(self, pair, pen):
        p, t = pair
        score, cigar = myers_miller_align(p, t, pen)
        cigar.validate(p, t)
        assert score == gotoh_score(p, t, pen)

    @settings(max_examples=40, deadline=None)
    @given(pair=similar_pair(max_len=30, max_edits=6))
    def test_matches_wfa(self, pair):
        p, t = pair
        assert myers_miller_align(p, t, PEN)[0] == WavefrontAligner(PEN).score(p, t)

    @settings(max_examples=40, deadline=None)
    @given(pair=similar_pair(max_len=30, max_edits=6))
    def test_edit_and_linear_params(self, pair):
        p, t = pair
        for pen in (EditPenalties(), LinearPenalties(3, 2)):
            score, cigar = myers_miller_align(p, t, pen)
            cigar.validate(p, t)
            assert score == gotoh_score(p, t, pen)


class TestScale:
    def test_long_sequences(self):
        """2kb pair: full-matrix Gotoh traceback would hold ~12M cells;
        the linear-space version recurses with O(m) rows."""
        rng = random.Random(77)
        p = "".join(rng.choice("ACGT") for _ in range(2000))
        t = list(p)
        for _ in range(60):
            op = rng.randrange(3)
            if op == 0:
                t[rng.randrange(len(t))] = rng.choice("ACGT")
            elif op == 1:
                t.insert(rng.randrange(len(t) + 1), rng.choice("ACGT"))
            else:
                del t[rng.randrange(len(t))]
        t = "".join(t)
        score, cigar = myers_miller_align(p, t, PEN)
        cigar.validate(p, t)
        assert cigar.score(PEN) == score
        # cross-check the score against WFA (cheap for similar pairs)
        assert score == WavefrontAligner(PEN).score(p, t)

    def test_cooptimal_with_gotoh_traceback(self):
        p, t = "ACGTACGTAC", "ACGGTACGAC"
        mm_score, mm_cigar = myers_miller_align(p, t, PEN)
        g_score, g_cigar = gotoh_align(p, t, PEN)
        assert mm_score == g_score
        # paths may differ (co-optimal) but both must rescore identically
        assert mm_cigar.score(PEN) == g_cigar.score(PEN)
