"""Tests for the functional CPU runner."""

import pytest

from repro.baselines.gotoh import gotoh_score
from repro.core.penalties import AffinePenalties
from repro.cpu.runner import CpuRunner
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError

PEN = AffinePenalties(4, 6, 2)


class TestMeasure:
    def test_counters_accumulate_over_sample(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.03, seed=1).pairs(20)
        m = CpuRunner(PEN).measure(pairs)
        assert m.pairs == 20
        assert m.counters.cells_computed > 0
        assert m.cells_per_pair == m.counters.cells_computed / 20
        assert m.metadata_bytes_per_pair > 0
        assert len(m.scores) == 20
        assert m.seq_bytes_per_pair == pytest.approx(
            sum(len(p.pattern) + len(p.text) for p in pairs) / 20
        )

    def test_scores_are_correct(self):
        pairs = ReadPairGenerator(length=50, error_rate=0.05, seed=2).pairs(10)
        m = CpuRunner(PEN).measure(pairs)
        for pair, score in zip(pairs, m.scores):
            assert score == gotoh_score(pair.pattern, pair.text, PEN)

    def test_score_only_measure_cheaper_memory(self):
        pairs = ReadPairGenerator(length=80, error_rate=0.05, seed=3).pairs(10)
        with_tb = CpuRunner(PEN, traceback=True).measure(pairs)
        without = CpuRunner(PEN, traceback=False).measure(pairs)
        assert without.counters.backtrace_ops == 0
        assert with_tb.counters.backtrace_ops > 0
        assert (
            without.counters.peak_live_bytes <= with_tb.counters.peak_live_bytes
        )

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigError):
            CpuRunner(PEN).measure([])

    def test_adaptive_mode(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.03, seed=4).pairs(5)
        m = CpuRunner(PEN, adaptive=True).measure(pairs)
        assert m.pairs == 5


class TestAlignAll:
    def test_serial(self):
        pairs = ReadPairGenerator(length=40, error_rate=0.05, seed=5).pairs(8)
        results = CpuRunner(PEN).align_all(pairs)
        assert len(results) == 8
        for pair, res in zip(pairs, results):
            assert res.score == gotoh_score(pair.pattern, pair.text, PEN)
            res.cigar.validate(pair.pattern, pair.text)

    def test_small_batches_stay_serial(self):
        pairs = ReadPairGenerator(length=40, seed=6).pairs(3)
        results = CpuRunner(PEN).align_all(pairs, workers=4)
        assert len(results) == 3

    def test_invalid_workers(self):
        with pytest.raises(ConfigError):
            CpuRunner(PEN).align_all([], workers=0)

    @pytest.mark.slow
    def test_parallel_workers_match_serial(self):
        pairs = ReadPairGenerator(length=40, error_rate=0.05, seed=7).pairs(40)
        serial = CpuRunner(PEN).align_all(pairs)
        parallel = CpuRunner(PEN).align_all(pairs, workers=2)
        assert [r.score for r in serial] == [r.score for r in parallel]
