"""Tests for kernel event tracing."""

import pytest

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.pim.config import DpuConfig, HostTransferConfig
from repro.pim.dpu import Dpu
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import MramLayout
from repro.pim.trace import KernelTrace, TraceEvent, merge
from repro.pim.transfer import HostTransferEngine

PEN = AffinePenalties(4, 6, 2)


def traced_run(pairs, tasklets=2, policy="mram"):
    kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=3)
    kernel = WfaDpuKernel(kc)
    dpu = Dpu(DpuConfig())
    layout = MramLayout.plan(
        num_pairs=len(pairs),
        max_pattern_len=kc.max_seq_len,
        max_text_len=kc.max_seq_len,
        max_cigar_ops=kc.max_cigar_ops,
        tasklets=tasklets,
        metadata_bytes_per_tasklet=kc.metadata_peak_bytes() if policy == "mram" else 0,
    )
    HostTransferEngine(HostTransferConfig()).push_batch(dpu, layout, pairs)
    assignments = [list(range(t, len(pairs), tasklets)) for t in range(tasklets)]
    trace = KernelTrace()
    stats, _ = kernel.run(dpu, layout, assignments, policy, trace=trace)
    return trace, stats, layout


@pytest.fixture(scope="module")
def traced():
    pairs = ReadPairGenerator(length=60, error_rate=0.04, seed=30).pairs(6)
    return traced_run(pairs)


class TestEventStream:
    def test_four_phases_per_pair(self, traced):
        trace, _stats, _layout = traced
        for pair_index in range(6):
            phases = [e.phase for e in trace.for_pair(pair_index)]
            assert phases == ["fetch", "align", "metadata", "writeback"]

    def test_pairs_traced(self, traced):
        trace, _stats, _layout = traced
        assert trace.pairs_traced() == 6

    def test_tasklet_filter(self, traced):
        trace, _stats, _layout = traced
        t0 = trace.for_tasklet(0)
        t1 = trace.for_tasklet(1)
        assert len(t0) == len(t1) == 12  # 3 pairs x 4 phases each
        assert {e.tasklet_id for e in t0} == {0}


class TestReconciliation:
    def test_dma_cycles_reconcile_with_stats(self, traced):
        """The trace's DMA-phase cycles must equal the tasklet totals."""
        trace, stats, _layout = traced
        traced_dma = sum(
            e.cycles
            for e in trace.events
            if e.phase in ("fetch", "metadata", "writeback")
        )
        stats_dma = sum(s.dma_cycles for s in stats)
        assert traced_dma == pytest.approx(stats_dma)

    def test_instructions_reconcile(self, traced):
        trace, stats, _layout = traced
        traced_instr = sum(e.instructions for e in trace.events)
        assert traced_instr == pytest.approx(sum(s.instructions for s in stats))

    def test_bytes_reconcile(self, traced):
        trace, stats, _layout = traced
        traced_bytes = sum(e.dma_bytes for e in trace.events)
        assert traced_bytes == sum(s.dma_bytes for s in stats)


class TestRendering:
    def test_report(self, traced):
        trace, _stats, _layout = traced
        text = trace.report()
        assert "fetch" in text and "align" in text
        assert "pair executions" in text

    def test_timeline(self, traced):
        trace, _stats, _layout = traced
        line = trace.timeline(0)
        assert line.startswith("tasklet 0: [")
        assert "A" in line  # align phase dominates or at least appears

    def test_timeline_empty_tasklet(self):
        assert "no cycles" in KernelTrace().timeline(5)

    def test_merge(self, traced):
        trace, _stats, _layout = traced
        other = KernelTrace(
            events=[TraceEvent(tasklet_id=9, pair_index=0, phase="fetch", cycles=1)]
        )
        combined = merge([trace, other])
        assert len(combined.events) == len(trace.events) + 1


class TestPolicyContrast:
    def test_wram_policy_has_no_metadata_dma(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.04, seed=31).pairs(4)
        trace, _stats, _layout = traced_run(pairs, policy="wram")
        meta = [e for e in trace.events if e.phase == "metadata"]
        assert all(e.dma_bytes == 0 for e in meta)
        trace2, _s2, _l2 = traced_run(pairs, policy="mram")
        meta2 = [e for e in trace2.events if e.phase == "metadata"]
        assert sum(e.dma_bytes for e in meta2) > 0
