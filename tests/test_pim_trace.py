"""Tests for kernel event tracing."""

import pytest

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.pim.config import DpuConfig, HostTransferConfig
from repro.pim.dpu import Dpu
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import MramLayout
from repro.pim.trace import KernelTrace, TraceEvent, merge
from repro.pim.transfer import HostTransferEngine

PEN = AffinePenalties(4, 6, 2)


def traced_run(pairs, tasklets=2, policy="mram"):
    kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=3)
    kernel = WfaDpuKernel(kc)
    dpu = Dpu(DpuConfig())
    layout = MramLayout.plan(
        num_pairs=len(pairs),
        max_pattern_len=kc.max_seq_len,
        max_text_len=kc.max_seq_len,
        max_cigar_ops=kc.max_cigar_ops,
        tasklets=tasklets,
        metadata_bytes_per_tasklet=kc.metadata_peak_bytes() if policy == "mram" else 0,
    )
    HostTransferEngine(HostTransferConfig()).push_batch(dpu, layout, pairs)
    assignments = [list(range(t, len(pairs), tasklets)) for t in range(tasklets)]
    trace = KernelTrace()
    stats, _ = kernel.run(dpu, layout, assignments, policy, trace=trace)
    return trace, stats, layout


@pytest.fixture(scope="module")
def traced():
    pairs = ReadPairGenerator(length=60, error_rate=0.04, seed=30).pairs(6)
    return traced_run(pairs)


class TestEventStream:
    def test_four_phases_per_pair(self, traced):
        trace, _stats, _layout = traced
        for pair_index in range(6):
            phases = [e.phase for e in trace.for_pair(pair_index)]
            assert phases == ["fetch", "align", "metadata", "writeback"]

    def test_pairs_traced(self, traced):
        trace, _stats, _layout = traced
        assert trace.pairs_traced() == 6

    def test_tasklet_filter(self, traced):
        trace, _stats, _layout = traced
        t0 = trace.for_tasklet(0)
        t1 = trace.for_tasklet(1)
        assert len(t0) == len(t1) == 12  # 3 pairs x 4 phases each
        assert {e.tasklet_id for e in t0} == {0}


class TestReconciliation:
    def test_dma_cycles_reconcile_with_stats(self, traced):
        """The trace's DMA-phase cycles must equal the tasklet totals."""
        trace, stats, _layout = traced
        traced_dma = sum(
            e.cycles
            for e in trace.events
            if e.phase in ("fetch", "metadata", "writeback")
        )
        stats_dma = sum(s.dma_cycles for s in stats)
        assert traced_dma == pytest.approx(stats_dma)

    def test_instructions_reconcile(self, traced):
        trace, stats, _layout = traced
        traced_instr = sum(e.instructions for e in trace.events)
        assert traced_instr == pytest.approx(sum(s.instructions for s in stats))

    def test_bytes_reconcile(self, traced):
        trace, stats, _layout = traced
        traced_bytes = sum(e.dma_bytes for e in trace.events)
        assert traced_bytes == sum(s.dma_bytes for s in stats)


class TestRendering:
    def test_report(self, traced):
        trace, _stats, _layout = traced
        text = trace.report()
        assert "fetch" in text and "align" in text
        assert "pair executions" in text

    def test_timeline(self, traced):
        trace, _stats, _layout = traced
        line = trace.timeline(0)
        assert line.startswith("tasklet 0: [")
        assert "A" in line  # align phase dominates or at least appears

    def test_timeline_empty_tasklet(self):
        assert "no cycles" in KernelTrace().timeline(5)

    def test_merge(self, traced):
        trace, _stats, _layout = traced
        other = KernelTrace(
            events=[TraceEvent(tasklet_id=9, pair_index=0, phase="fetch", cycles=1)]
        )
        combined = merge([trace, other])
        assert len(combined.events) == len(trace.events) + 1


class TestDpuAttribution:
    def _dpu_trace(self, dpu_id, cycles=5.0):
        return KernelTrace(
            events=[
                TraceEvent(
                    tasklet_id=0,
                    pair_index=0,
                    phase="align",
                    cycles=cycles,
                    dpu_id=dpu_id,
                )
            ]
        )

    def test_kernel_stamps_dpu_id(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.04, seed=32).pairs(4)
        kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=3)
        kernel = WfaDpuKernel(kc)
        dpu = Dpu(DpuConfig(), dpu_id=7)
        layout = MramLayout.plan(
            num_pairs=len(pairs),
            max_pattern_len=kc.max_seq_len,
            max_text_len=kc.max_seq_len,
            max_cigar_ops=kc.max_cigar_ops,
            tasklets=2,
            metadata_bytes_per_tasklet=kc.metadata_peak_bytes(),
        )
        HostTransferEngine(HostTransferConfig()).push_batch(dpu, layout, pairs)
        trace = KernelTrace()
        kernel.run(dpu, layout, [[0, 2], [1, 3]], "mram", trace=trace)
        assert trace.dpus_traced() == [7]
        assert all(e.dpu_id == 7 for e in trace.events)

    def test_merge_keeps_attribution(self):
        merged = merge([self._dpu_trace(0), self._dpu_trace(2)])
        assert merged.dpus_traced() == [0, 2]
        assert len(merged.for_dpu(2).events) == 1
        assert merged.for_dpu(1).events == []

    def test_for_tasklet_dpu_filter(self):
        merged = merge([self._dpu_trace(0), self._dpu_trace(2)])
        assert len(merged.for_tasklet(0)) == 2  # tasklet 0 on both DPUs
        assert len(merged.for_tasklet(0, dpu_id=2)) == 1

    def test_pairs_traced_distinguishes_dpus(self):
        # same (tasklet, pair) on two DPUs = two distinct pair executions
        merged = merge([self._dpu_trace(0), self._dpu_trace(1)])
        assert merged.pairs_traced() == 2


class TestPhaseTotalsOrdering:
    def _custom_trace(self):
        return KernelTrace(
            events=[
                TraceEvent(tasklet_id=0, pair_index=0, phase="teardown", cycles=2),
                TraceEvent(tasklet_id=0, pair_index=0, phase="align", cycles=8),
                TraceEvent(tasklet_id=0, pair_index=0, phase="setup", cycles=1),
                TraceEvent(tasklet_id=0, pair_index=1, phase="teardown", cycles=2),
            ]
        )

    def test_known_phases_first_then_first_encounter(self):
        totals = self._custom_trace().phase_totals()
        assert list(totals) == [
            "fetch", "align", "metadata", "writeback", "teardown", "setup"
        ]
        assert totals["teardown"]["cycles"] == 4
        assert totals["fetch"]["cycles"] == 0  # pre-seeded, zeroed

    def test_report_covers_unknown_phases(self):
        text = self._custom_trace().report()
        assert "teardown" in text and "setup" in text
        assert "fetch" not in text  # zero-activity known phase omitted
        # unknown phases keep first-encounter order in the table
        assert text.index("teardown") < text.index("setup")


class TestTimelineEdgeCases:
    def test_zero_cycle_events_occupy_no_cells(self):
        trace = KernelTrace(
            events=[
                TraceEvent(tasklet_id=0, pair_index=0, phase="fetch", cycles=0),
                TraceEvent(tasklet_id=0, pair_index=0, phase="align", cycles=10),
            ]
        )
        line = trace.timeline(0, width=10)
        assert "f" not in line.split("[")[1]
        assert "A" * 10 in line

    def test_small_events_round_up_to_one_cell(self):
        trace = KernelTrace(
            events=[
                TraceEvent(tasklet_id=0, pair_index=0, phase="fetch", cycles=1),
                TraceEvent(tasklet_id=0, pair_index=0, phase="align", cycles=999),
            ]
        )
        bar = trace.timeline(0, width=10).split("[")[1]
        assert bar.count("f") == 1  # not rounded away

    def test_unknown_phase_renders_question_mark(self):
        trace = KernelTrace(
            events=[
                TraceEvent(tasklet_id=0, pair_index=0, phase="mystery", cycles=4),
                TraceEvent(tasklet_id=0, pair_index=0, phase="align", cycles=4),
            ]
        )
        assert "?" in trace.timeline(0)

    def test_dpu_label(self):
        trace = KernelTrace(
            events=[
                TraceEvent(
                    tasklet_id=1, pair_index=0, phase="align", cycles=4, dpu_id=3
                )
            ]
        )
        assert trace.timeline(1, dpu_id=3).startswith("dpu 3 tasklet 1: [")
        assert "no cycles" in trace.timeline(1, dpu_id=9)


class TestPolicyContrast:
    def test_wram_policy_has_no_metadata_dma(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.04, seed=31).pairs(4)
        trace, _stats, _layout = traced_run(pairs, policy="wram")
        meta = [e for e in trace.events if e.phase == "metadata"]
        assert all(e.dma_bytes == 0 for e in meta)
        trace2, _s2, _l2 = traced_run(pairs, policy="mram")
        meta2 = [e for e in trace2.events if e.phase == "metadata"]
        assert sum(e.dma_bytes for e in meta2) > 0
