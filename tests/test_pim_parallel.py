"""Tests for the host-parallel DPU execution engine.

The load-bearing guarantee: a parallel run (any worker count) is
result-identical to a sequential run — scores, CIGARs, regions, per-DPU
stats, modeled timings, and transfer accounting all match exactly.
"""

import pickle
from dataclasses import astuple, replace

import pytest

from repro.baselines.gotoh import gotoh_score
from repro.core.penalties import AffinePenalties
from repro.data.datasets import DatasetSpec
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError
from repro.pim import parallel as parallel_mod
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.parallel import (
    DpuJob,
    GeneratorSpec,
    execute_jobs,
    resolve_workers,
    run_dpu_job,
)
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem

PEN = AffinePenalties(4, 6, 2)


def make_system(
    workers: int = 1,
    tasklets: int = 2,
    policy: str = "mram",
    num_dpus: int = 4,
) -> PimSystem:
    cfg = PimSystemConfig(
        num_dpus=num_dpus,
        num_ranks=1,
        tasklets=tasklets,
        num_simulated_dpus=num_dpus,
        metadata_policy=policy,
        workers=workers,
    )
    kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=2)
    return PimSystem(cfg, kc)


def run_signature(res):
    """Everything a PimRunResult carries, in comparable form."""
    return (
        res.num_pairs,
        res.pairs_simulated,
        res.tasklets,
        res.metadata_policy,
        res.kernel_seconds,
        res.transfer_in_seconds,
        res.transfer_out_seconds,
        res.launch_seconds,
        res.bytes_in,
        res.bytes_out,
        res.scale_factor,
        [astuple(s) for s in res.per_dpu],
        [(i, s, None if c is None else str(c)) for i, s, c in res.results],
        sorted(res.regions.items()),
    )


class TestEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize(
        "seed,tasklets,policy",
        [(1, 2, "mram"), (2, 4, "mram"), (3, 2, "wram")],
    )
    def test_align_matches_sequential(self, workers, seed, tasklets, policy):
        pairs = ReadPairGenerator(length=50, error_rate=0.04, seed=seed).pairs(14)
        seq_sys = make_system(workers=1, tasklets=tasklets, policy=policy)
        par_sys = make_system(workers=workers, tasklets=tasklets, policy=policy)
        seq = seq_sys.align(pairs)
        par = par_sys.align(pairs)
        assert run_signature(par) == run_signature(seq)
        assert par_sys.transfer.stats == seq_sys.transfer.stats
        # and the results are actually correct, not just consistent
        for idx, score, cigar in par.results:
            assert score == gotoh_score(pairs[idx].pattern, pairs[idx].text, PEN)
            cigar.validate(pairs[idx].pattern, pairs[idx].text)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_model_run_matches_sequential(self, workers):
        spec = DatasetSpec(num_pairs=64, length=50, error_rate=0.04, seed=5)
        seq = make_system(workers=1, num_dpus=8).model_run(
            spec, sample_pairs_per_dpu=4, collect_results=True
        )
        par = make_system(workers=workers, num_dpus=8).model_run(
            spec, sample_pairs_per_dpu=4, collect_results=True
        )
        assert run_signature(par) == run_signature(seq)

    def test_scheduler_matches_sequential(self):
        pairs = ReadPairGenerator(length=50, error_rate=0.02, seed=8).pairs(18)
        seq = BatchScheduler(make_system()).run(
            pairs, pairs_per_round=8, collect_results=True
        )
        par = BatchScheduler(make_system(), workers=2).run(
            pairs, pairs_per_round=8, collect_results=True
        )
        assert seq.schedule == par.schedule
        assert [run_signature(r) for r in par.per_round] == [
            run_signature(r) for r in seq.per_round
        ]
        assert par.total_seconds == seq.total_seconds

    def test_workers_override_per_call(self):
        pairs = ReadPairGenerator(length=50, error_rate=0.02, seed=9).pairs(8)
        system = make_system(workers=1)
        seq = system.align(pairs)
        par = system.align(pairs, workers=2)
        assert run_signature(par) == run_signature(seq)


class TestTelemetryEquivalence:
    """Traces and metric snapshots shipped home by workers must match the
    sequential path event for event and sample for sample."""

    def _run(self, workers):
        from repro.obs import RunTelemetry

        tel = RunTelemetry()
        cfg = PimSystemConfig(
            num_dpus=4,
            num_ranks=1,
            tasklets=2,
            num_simulated_dpus=4,
            workers=workers,
        )
        kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=2)
        system = PimSystem(cfg, kc, telemetry=tel)
        pairs = ReadPairGenerator(length=50, error_rate=0.04, seed=6).pairs(12)
        system.align(pairs)
        return tel

    @pytest.mark.parametrize("workers", [2, 4])
    def test_trace_events_identical(self, workers):
        seq, par = self._run(1), self._run(workers)
        assert seq.segments[0].trace.events == par.segments[0].trace.events

    @pytest.mark.parametrize("workers", [2, 4])
    def test_metric_snapshots_identical(self, workers):
        seq, par = self._run(1), self._run(workers)
        assert seq.registry.snapshot() == par.registry.snapshot()

    def test_collect_flags_off_ship_nothing(self):
        system = make_system()
        pairs = ReadPairGenerator(length=50, error_rate=0.02, seed=3).pairs(4)
        layout = system.plan_layout(len(pairs))
        job = system._make_job(0, layout, pairs=tuple(pairs))
        rec = run_dpu_job(job)
        assert rec.trace is None
        assert rec.metrics is None

    def test_collecting_job_round_trips_through_pickle(self):
        system = make_system()
        pairs = ReadPairGenerator(length=50, error_rate=0.02, seed=3).pairs(4)
        layout = system.plan_layout(len(pairs))
        job = replace(
            system._make_job(0, layout, pairs=tuple(pairs)),
            collect_trace=True,
            collect_metrics=True,
        )
        rec = pickle.loads(pickle.dumps(run_dpu_job(pickle.loads(pickle.dumps(job)))))
        assert rec.trace is not None and len(rec.trace.events) == 16  # 4 pairs x 4
        assert all(e.dpu_id == 0 for e in rec.trace.events)
        assert rec.metrics is not None
        assert rec.metrics["schema"] == "repro.obs.metrics/v1"

    def test_collection_does_not_change_results(self):
        """Turning telemetry on must not perturb the simulation."""
        from repro.obs import RunTelemetry

        pairs = ReadPairGenerator(length=50, error_rate=0.04, seed=10).pairs(10)
        plain = make_system().align(pairs)
        cfg = PimSystemConfig(
            num_dpus=4, num_ranks=1, tasklets=2, num_simulated_dpus=4, workers=1
        )
        kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=2)
        observed = PimSystem(cfg, kc, telemetry=RunTelemetry()).align(pairs)
        assert run_signature(observed) == run_signature(plain)


class TestEngine:
    def _job(self, dpu_id=0, **kw):
        system = make_system()
        pairs = ReadPairGenerator(length=50, error_rate=0.02, seed=3).pairs(4)
        layout = system.plan_layout(len(pairs))
        return system._make_job(dpu_id, layout, pairs=tuple(pairs), **kw)

    def test_job_and_result_picklable(self):
        job = self._job()
        clone = pickle.loads(pickle.dumps(job))
        rec = run_dpu_job(clone)
        rec2 = pickle.loads(pickle.dumps(rec))
        assert rec2.dpu_id == rec.dpu_id
        assert rec2.num_pairs == 4
        assert astuple(rec2.stats) == astuple(rec.stats)
        assert [(i, s, str(c), ps, ts) for i, s, c, ps, ts in rec2.results] == [
            (i, s, str(c), ps, ts) for i, s, c, ps, ts in rec.results
        ]

    def test_generator_spec_job(self):
        system = make_system()
        layout = system.plan_layout(4)
        gen = GeneratorSpec(
            length=50, error_rate=0.02, seed=11, error_model="exact", count=4
        )
        job = system._make_job(1, layout, generator=gen)
        rec = run_dpu_job(job)
        assert rec.num_pairs == 4
        expected = ReadPairGenerator(length=50, error_rate=0.02, seed=11).pairs(4)
        for (local, score, _c, _ps, _ts), pair in zip(rec.results, expected):
            assert score == gotoh_score(pair.pattern, pair.text, PEN)

    def test_job_without_payload_rejected(self):
        system = make_system()
        layout = system.plan_layout(1)
        job = system._make_job(0, layout)
        with pytest.raises(ConfigError):
            job.batch()

    def test_records_sorted_by_dpu_id(self):
        jobs = [self._job(dpu_id=d) for d in (2, 0, 1)]
        records = execute_jobs(jobs, workers=1)
        assert [r.dpu_id for r in records] == [0, 1, 2]

    def test_pull_false_returns_no_results(self):
        rec = run_dpu_job(self._job(pull=False))
        assert rec.results == []
        assert rec.transfer_stats.pulls == 0
        assert rec.transfer_stats.pushes == 1

    def test_resolve_workers(self):
        assert resolve_workers(1, 8) == 1
        assert resolve_workers(4, 2) == 2  # capped at the job count
        assert resolve_workers(0, 8) >= 1  # 0 = auto (cpu count)
        with pytest.raises(ConfigError):
            resolve_workers(-1, 8)

    def test_negative_workers_rejected_in_config(self):
        with pytest.raises(ConfigError):
            PimSystemConfig(
                num_dpus=2, num_ranks=1, tasklets=2, num_simulated_dpus=2, workers=-1
            ).validate()

    def test_pool_failure_falls_back_to_sequential(self, monkeypatch):
        """If the process pool cannot start, results still come back."""

        class ExplodingPool:
            def __init__(self, *a, **kw):
                raise OSError("fork forbidden")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", ExplodingPool)
        jobs = [self._job(dpu_id=d) for d in range(3)]
        records = execute_jobs(jobs, workers=3)
        assert [r.dpu_id for r in records] == [0, 1, 2]
        assert all(r.num_pairs == 4 for r in records)
