"""Tests for the host transfer engine."""

import pytest

from repro.data.generator import ReadPairGenerator
from repro.errors import LayoutError
from repro.pim.config import DpuConfig, HostTransferConfig
from repro.pim.dpu import Dpu
from repro.pim.layout import MramLayout
from repro.pim.transfer import HostTransferEngine


@pytest.fixture
def layout():
    return MramLayout.plan(
        num_pairs=8,
        max_pattern_len=32,
        max_text_len=32,
        max_cigar_ops=5,
        tasklets=2,
        metadata_bytes_per_tasklet=512,
    )


@pytest.fixture
def engine():
    return HostTransferEngine(HostTransferConfig())


class TestFunctionalPath:
    def test_push_writes_header_and_records(self, layout, engine):
        pairs = ReadPairGenerator(length=30, error_rate=0.0, seed=1).pairs(5)
        dpu = Dpu(DpuConfig())
        moved = engine.push_batch(dpu, layout, pairs)
        assert moved == 64 + 5 * layout.input_record_size
        parsed = MramLayout.read_header(dpu.mram)
        assert parsed == layout
        back = layout.unpack_pair(
            dpu.mram.read(layout.input_addr(2), layout.input_record_size)
        )
        assert back.pattern == pairs[2].pattern

    def test_push_overflow_rejected(self, layout, engine):
        pairs = ReadPairGenerator(length=30, error_rate=0.0, seed=1).pairs(9)
        with pytest.raises(LayoutError):
            engine.push_batch(Dpu(DpuConfig()), layout, pairs)

    def test_pull_roundtrip(self, layout, engine):
        dpu = Dpu(DpuConfig())
        record = layout.pack_result(7, None)
        dpu.mram.write(layout.result_addr(0), record)
        results, moved = engine.pull_results(dpu, layout, 1)
        assert results == [(7, None)]
        assert moved == layout.result_record_size

    def test_pull_overflow_rejected(self, layout, engine):
        with pytest.raises(LayoutError):
            engine.pull_results(Dpu(DpuConfig()), layout, 9)

    def test_push_accounting_uses_layout_header_constant(self, layout, monkeypatch):
        """Regression: push accounting must track ``layout.HEADER_BYTES``,
        not a hardcoded 64, or it silently diverges from
        ``PimSystem._system_bytes`` if the header ever changes."""
        import repro.pim.transfer as transfer_mod

        monkeypatch.setattr(transfer_mod, "HEADER_BYTES", 128)
        engine = HostTransferEngine(HostTransferConfig())
        pairs = ReadPairGenerator(length=30, error_rate=0.0, seed=1).pairs(3)
        moved = engine.push_batch(Dpu(DpuConfig()), layout, pairs)
        assert moved == 128 + 3 * layout.input_record_size
        assert engine.stats.bytes_to_dpu == moved

    def test_stats_merge(self, layout, engine):
        from repro.pim.transfer import TransferStats

        a = TransferStats(bytes_to_dpu=10, bytes_from_dpu=20, pushes=1, pulls=2)
        a.merge(TransferStats(bytes_to_dpu=5, bytes_from_dpu=7, pushes=3, pulls=4))
        assert a == TransferStats(
            bytes_to_dpu=15, bytes_from_dpu=27, pushes=4, pulls=6
        )

    def test_stats_accumulate(self, layout, engine):
        pairs = ReadPairGenerator(length=30, error_rate=0.0, seed=1).pairs(2)
        dpu = Dpu(DpuConfig())
        engine.push_batch(dpu, layout, pairs)
        engine.pull_results(dpu, layout, 2)
        assert engine.stats.pushes == 1
        assert engine.stats.pulls == 1
        assert engine.stats.bytes_to_dpu > 0
        assert engine.stats.bytes_from_dpu == 2 * layout.result_record_size


class TestTimingModel:
    def test_seconds_linear_in_bytes(self, engine):
        assert engine.to_dpu_seconds(2_000_000) == pytest.approx(
            2 * engine.to_dpu_seconds(1_000_000)
        )
        assert engine.from_dpu_seconds(0) == 0.0

    def test_uses_effective_bandwidths(self):
        cfg = HostTransferConfig(
            effective_to_dpu_bytes_per_s=1e9, effective_from_dpu_bytes_per_s=5e8
        )
        e = HostTransferEngine(cfg)
        assert e.to_dpu_seconds(1e9) == pytest.approx(1.0)
        assert e.from_dpu_seconds(1e9) == pytest.approx(2.0)

    def test_launch_overhead(self):
        e = HostTransferEngine(HostTransferConfig(launch_overhead_s=0.25))
        assert e.launch_seconds() == 0.25

    def test_rank_bound_on_small_systems(self):
        cfg = HostTransferConfig(
            effective_to_dpu_bytes_per_s=6.6e9,
            per_rank_to_dpu_bytes_per_s=0.7e9,
        )
        e = HostTransferEngine(cfg)
        nbytes = int(1e9)
        # one rank: per-rank bandwidth binds
        assert e.to_dpu_seconds(nbytes, num_ranks=1) == pytest.approx(1e9 / 0.7e9)
        # forty ranks: aggregate binds
        assert e.to_dpu_seconds(nbytes, num_ranks=40) == pytest.approx(1e9 / 6.6e9)

    def test_rank_bound_crossover(self):
        e = HostTransferEngine(HostTransferConfig())
        nbytes = int(1e9)
        times = [e.to_dpu_seconds(nbytes, r) for r in (1, 2, 4, 8, 16, 40)]
        # monotone non-increasing, saturating at the aggregate limit
        assert all(a >= b for a, b in zip(times, times[1:]))
        assert times[-1] == pytest.approx(e.to_dpu_seconds(nbytes))

    def test_zero_ranks_means_aggregate_only(self):
        e = HostTransferEngine(HostTransferConfig())
        assert e.from_dpu_seconds(1000, 0) == e.from_dpu_seconds(1000)
