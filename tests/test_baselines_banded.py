"""Tests for banded Gotoh DP."""

import pytest
from hypothesis import given, settings

from repro.baselines.banded import (
    band_for_error_rate,
    banded_gotoh_align,
    banded_gotoh_score,
)
from repro.baselines.gotoh import gotoh_score
from repro.core.penalties import AffinePenalties
from repro.errors import AlignmentError

from conftest import similar_pair

PEN = AffinePenalties(4, 6, 2)


class TestBandSizing:
    def test_band_for_error_rate(self):
        assert band_for_error_rate(100, 0.02) == 4  # ceil(2) + 2
        assert band_for_error_rate(100, 0.04) == 6
        assert band_for_error_rate(100, 0.0) == 2

    def test_invalid_band(self):
        with pytest.raises(AlignmentError):
            banded_gotoh_score("AC", "AC", PEN, 0)

    def test_band_too_narrow_for_length_difference(self):
        with pytest.raises(AlignmentError):
            banded_gotoh_score("A", "AAAAAA", PEN, 2)


class TestExactWithinBand:
    def test_identical(self):
        assert banded_gotoh_score("ACGTACGT", "ACGTACGT", PEN, 1) == 0

    def test_matches_full_dp_with_wide_band(self):
        p, t = "GATTACA", "GATCACA"
        assert banded_gotoh_score(p, t, PEN, 7) == gotoh_score(p, t, PEN)

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair(max_len=30, max_edits=4))
    def test_wide_band_equals_full_dp(self, pair):
        p, t = pair
        band = max(abs(len(p) - len(t)), len(p), len(t), 1)
        assert banded_gotoh_score(p, t, PEN, band) == gotoh_score(p, t, PEN)

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair(max_len=30, max_edits=3))
    def test_narrow_band_is_upper_bound(self, pair):
        p, t = pair
        band = abs(len(p) - len(t)) + 2
        try:
            banded = banded_gotoh_score(p, t, PEN, band)
        except AlignmentError:
            return
        assert banded >= gotoh_score(p, t, PEN)


class TestBandedTraceback:
    def test_traceback_valid_and_scores(self):
        p, t = "GATTACAGATTACA", "GATCACAGATTACA"
        s, c = banded_gotoh_align(p, t, PEN, 5)
        c.validate(p, t)
        assert c.score(PEN) == s

    @settings(max_examples=50, deadline=None)
    @given(pair=similar_pair(max_len=25, max_edits=4))
    def test_traceback_property(self, pair):
        p, t = pair
        band = max(abs(len(p) - len(t)) + 2, 3)
        s, c = banded_gotoh_align(p, t, PEN, band)
        c.validate(p, t)
        assert c.score(PEN) == s

    def test_empty_inputs(self):
        s, c = banded_gotoh_align("", "", PEN, 1)
        assert s == 0 and c.columns() == 0
        s, c = banded_gotoh_align("A", "", PEN, 1)
        assert s == PEN.gap_cost(1) and str(c) == "1D"
