"""Tests for the two-piece gap-affine metric (WFA2-lib's affine-2p)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gotoh import gotoh_score
from repro.baselines.gotoh2p import gotoh2p_score
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, TwoPieceAffinePenalties
from repro.errors import AlignmentError, PenaltyError

from conftest import similar_pair

PEN2P = TwoPieceAffinePenalties()  # (4, 6/2, 24/1)

two_piece_penalties = st.builds(
    TwoPieceAffinePenalties,
    mismatch=st.integers(1, 6),
    gap_open1=st.integers(0, 8),
    gap_extend1=st.integers(1, 4),
    gap_open2=st.integers(0, 30),
    gap_extend2=st.integers(1, 4),
)


class TestPenaltyModel:
    def test_defaults(self):
        assert PEN2P.as_tuple() == (4, 6, 2, 24, 1)

    def test_gap_cost_takes_cheaper_piece(self):
        # piece1: 6 + 2l, piece2: 24 + l; crossover at l = 18
        assert PEN2P.gap_cost(1) == 8
        assert PEN2P.gap_cost(18) == min(6 + 36, 24 + 18) == 42
        assert PEN2P.gap_cost(30) == 54  # piece2 wins
        assert PEN2P.gap_cost(0) == 0

    def test_validation(self):
        with pytest.raises(PenaltyError):
            TwoPieceAffinePenalties(mismatch=0)
        with pytest.raises(PenaltyError):
            TwoPieceAffinePenalties(gap_extend1=0)
        with pytest.raises(PenaltyError):
            TwoPieceAffinePenalties(gap_open2=-1)
        with pytest.raises(PenaltyError):
            PEN2P.gap_cost(-1)

    def test_pieces(self):
        assert PEN2P.piece1() == AffinePenalties(4, 6, 2)
        assert PEN2P.piece2() == AffinePenalties(4, 24, 1)


class TestKnownScores:
    def test_identical(self):
        assert WavefrontAligner(PEN2P).score("ACGTACGT", "ACGTACGT") == 0

    def test_mismatch(self):
        assert WavefrontAligner(PEN2P).score("GATTACA", "GATCACA") == 4

    def test_short_gap_uses_piece1(self):
        # 2-gap: piece1 = 6+4 = 10, piece2 = 24+2 = 26
        assert WavefrontAligner(PEN2P).score("AACC", "AATTCC") == 10

    def test_long_gap_uses_piece2(self):
        gap = 30
        p = "ACGT" * 5
        t = p[:10] + "T" * gap + p[10:]
        expected = PEN2P.gap_cost(gap)
        assert expected == 24 + gap  # piece2
        assert WavefrontAligner(PEN2P).score(p, t) == expected

    def test_empty_cases(self):
        al = WavefrontAligner(PEN2P)
        assert al.score("", "") == 0
        assert al.score("", "ACGT") == PEN2P.gap_cost(4)
        assert al.score("ACGT", "") == PEN2P.gap_cost(4)


class TestOracle:
    @settings(max_examples=100, deadline=None)
    @given(pair=similar_pair(max_len=35, max_edits=8))
    def test_matches_dp_default_penalties(self, pair):
        p, t = pair
        assert WavefrontAligner(PEN2P).score(p, t) == gotoh2p_score(p, t, PEN2P)

    @settings(max_examples=50, deadline=None)
    @given(pair=similar_pair(max_len=22, max_edits=8), pen=two_piece_penalties)
    def test_matches_dp_random_penalties(self, pair, pen):
        p, t = pair
        assert WavefrontAligner(pen).score(p, t) == gotoh2p_score(p, t, pen)

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair(max_len=30, max_edits=6))
    def test_cigar_validates_and_rescores(self, pair):
        p, t = pair
        r = WavefrontAligner(PEN2P).align(p, t)
        r.cigar.validate(p, t)
        assert r.cigar.score(PEN2P) == r.score

    @settings(max_examples=50, deadline=None)
    @given(pair=similar_pair(max_len=30, max_edits=6))
    def test_never_worse_than_either_piece(self, pair):
        """min over both pieces can only improve on each alone."""
        p, t = pair
        two = WavefrontAligner(PEN2P).score(p, t)
        assert two <= gotoh_score(p, t, PEN2P.piece1())
        assert two <= gotoh_score(p, t, PEN2P.piece2())

    @settings(max_examples=40, deadline=None)
    @given(pair=similar_pair(max_len=25, max_edits=5))
    def test_equal_pieces_collapse_to_affine(self, pair):
        """With identical pieces, affine-2p == plain affine."""
        p, t = pair
        pen = TwoPieceAffinePenalties(4, 6, 2, 6, 2)
        assert WavefrontAligner(pen).score(p, t) == gotoh_score(
            p, t, AffinePenalties(4, 6, 2)
        )

    @settings(max_examples=40, deadline=None)
    @given(pair=similar_pair(max_len=25, max_edits=5))
    def test_score_only_matches(self, pair):
        p, t = pair
        al = WavefrontAligner(PEN2P)
        assert al.align(p, t, score_only=True).score == al.align(p, t).score


class TestKernelIntegration:
    def test_pim_kernel_supports_affine2p(self):
        from repro.data.generator import ReadPairGenerator
        from repro.pim.config import PimSystemConfig
        from repro.pim.kernel import KernelConfig
        from repro.pim.system import PimSystem

        cfg = PimSystemConfig(num_dpus=2, num_ranks=1, tasklets=2, num_simulated_dpus=2)
        kc = KernelConfig(penalties=PEN2P, max_read_len=60, max_edits=3)
        assert kc.wavefront_components == 5
        system = PimSystem(cfg, kc)
        pairs = ReadPairGenerator(length=60, error_rate=0.04, seed=31).pairs(8)
        res = system.align(pairs)
        for idx, score, cigar in res.results:
            assert score == gotoh2p_score(pairs[idx].pattern, pairs[idx].text, PEN2P)
            cigar.validate(pairs[idx].pattern, pairs[idx].text)

    def test_wram_admission_tighter_than_affine(self):
        from repro.pim.config import DpuConfig
        from repro.pim.kernel import KernelConfig, WfaDpuKernel, max_supported_tasklets

        k3 = WfaDpuKernel(KernelConfig(penalties=AffinePenalties(), max_edits=4))
        k5 = WfaDpuKernel(KernelConfig(penalties=PEN2P, max_edits=4))
        assert max_supported_tasklets(k5, DpuConfig(), "wram") <= max_supported_tasklets(
            k3, DpuConfig(), "wram"
        )
