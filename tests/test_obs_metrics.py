"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.errors import TelemetryError
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestRegistration:
    def test_idempotent_by_name(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", "hits")
        b = reg.counter("hits_total")
        assert a is b
        assert a.help == "hits"  # first registration wins

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TelemetryError):
            reg.gauge("x_total")

    @pytest.mark.parametrize(
        "bad", ["", "9lives", "has space", "CamelCase", "dash-ed", "unicode_é"]
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter(bad)

    def test_good_names_accepted(self):
        reg = MetricsRegistry()
        reg.counter("ok_name_2")
        reg.counter("ns:sub_total")

    def test_families_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zzz")
        reg.gauge("aaa")
        assert [f.name for f in reg.families()] == ["aaa", "zzz"]


class TestCounter:
    def test_inc_accumulates(self):
        fam = MetricsRegistry().counter("n_total")
        fam.inc()
        fam.inc(2.5)
        assert fam.value() == 3.5

    def test_negative_increment_rejected(self):
        fam = MetricsRegistry().counter("n_total")
        with pytest.raises(TelemetryError):
            fam.inc(-1)

    def test_labeled_series_independent(self):
        fam = MetricsRegistry().counter("n_total")
        fam.inc(1, dpu="0")
        fam.inc(4, dpu="1")
        assert fam.value(dpu="0") == 1
        assert fam.value(dpu="1") == 4
        assert fam.value(dpu="7") == 0  # never-touched series reads 0

    def test_label_values_stringified(self):
        fam = MetricsRegistry().counter("n_total")
        fam.inc(2, dpu=3)
        assert fam.value(dpu="3") == 2  # int and str label keys coincide


class TestGauge:
    def test_set_and_add(self):
        fam = MetricsRegistry().gauge("level")
        fam.set(10)
        fam.labels().add(-3)
        assert fam.value() == 7


class TestHistogram:
    def test_observe_buckets(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.2):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # (<=1, <=10, +Inf)
        assert h.cumulative() == [2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(55.7)

    def test_boundary_lands_in_bucket(self):
        h = Histogram(buckets=(1.0,))
        h.observe(1.0)  # le is inclusive, Prometheus-style
        assert h.counts == [1, 0]

    def test_registry_default_buckets(self):
        fam = MetricsRegistry().histogram("t_seconds")
        fam.observe(0.05)
        assert fam.labels().buckets == DEFAULT_SECONDS_BUCKETS


class TestSnapshotMerge:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("pairs_total", "pairs").inc(5, kind="align")
        reg.gauge("cycles").set(100, dpu="0")
        reg.histogram("t_seconds", buckets=(0.1, 1.0)).observe(0.5)
        return reg

    def test_snapshot_stable(self):
        a, b = self._populated(), self._populated()
        assert a.snapshot() == b.snapshot()
        assert a.snapshot()["schema"] == "repro.obs.metrics/v1"

    def test_merge_sums_counters_and_histograms(self):
        host = self._populated()
        host.merge_snapshot(self._populated().snapshot())
        assert host.get("pairs_total").value(kind="align") == 10
        series = host.get("t_seconds").labels()
        assert series.count == 2
        assert series.sum == pytest.approx(1.0)

    def test_merge_gauges_take_max(self):
        host = MetricsRegistry()
        host.gauge("cycles").set(100)
        other = MetricsRegistry()
        other.gauge("cycles").set(40)
        host.merge_snapshot(other.snapshot())
        assert host.get("cycles").value() == 100
        bigger = MetricsRegistry()
        bigger.gauge("cycles").set(250)
        host.merge_snapshot(bigger.snapshot())
        assert host.get("cycles").value() == 250

    def test_merge_order_independent(self):
        snaps = []
        for i in range(3):
            reg = MetricsRegistry()
            reg.counter("n_total").inc(i + 1, dpu=str(i))
            reg.gauge("peak").set(10 * (i + 1))
            snaps.append(reg.snapshot())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for s in snaps:
            fwd.merge_snapshot(s)
        for s in reversed(snaps):
            rev.merge_snapshot(s)
        assert fwd.snapshot() == rev.snapshot()

    def test_unknown_schema_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().merge_snapshot({"schema": "bogus/v0"})

    def test_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = a.snapshot()
        snap["families"][0]["buckets"] = [1.0, 2.0]
        snap["families"][0]["series"][0]["counts"] = [1, 0, 0]
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0,)).observe(0.5)
        with pytest.raises(TelemetryError):
            b.merge_snapshot(snap)


class TestPrometheusRendering:
    def test_golden_output(self):
        reg = MetricsRegistry()
        reg.counter("pairs_total", "pairs aligned").inc(5, kind="align")
        reg.gauge("level").set(2.5)
        reg.histogram("t_seconds", "section time", buckets=(0.1, 1.0)).observe(0.5)
        assert reg.render_prometheus() == (
            "# TYPE level gauge\n"
            "level 2.5\n"
            "# HELP pairs_total pairs aligned\n"
            "# TYPE pairs_total counter\n"
            'pairs_total{kind="align"} 5\n'
            "# HELP t_seconds section time\n"
            "# TYPE t_seconds histogram\n"
            't_seconds_bucket{le="0.1"} 0\n'
            't_seconds_bucket{le="1"} 1\n'
            't_seconds_bucket{le="+Inf"} 1\n'
            "t_seconds_sum 0.5\n"
            "t_seconds_count 1\n"
        )

    def test_integer_values_render_without_decimal(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(3)
        assert "n_total 3\n" in reg.render_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestCardinalityGuard:
    def test_cap_trips_with_typed_error(self):
        from repro.errors import CardinalityError

        reg = MetricsRegistry(max_series_per_family=3)
        fam = reg.counter("hits_total")
        for i in range(3):
            fam.inc(1, shard=str(i))
        with pytest.raises(CardinalityError, match="hits_total"):
            fam.inc(1, shard="3")
        # existing series keep working after the trip
        fam.inc(1, shard="0")
        assert fam.value(shard="0") == 2

    def test_cardinality_error_is_a_telemetry_error(self):
        from repro.errors import CardinalityError

        assert issubclass(CardinalityError, TelemetryError)

    def test_cap_applies_per_family(self):
        reg = MetricsRegistry(max_series_per_family=1)
        reg.counter("a_total").inc(1)
        reg.counter("b_total").inc(1)  # its own budget

    def test_bad_cap_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry(max_series_per_family=0)

    def test_default_cap_is_roomy(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total")
        for i in range(100):
            fam.inc(1, shard=str(i))  # well under the default cap


class TestDiff:
    def test_counter_deltas_since_snapshot(self):
        reg = MetricsRegistry()
        fam = reg.counter("pairs_total")
        fam.inc(5, kind="align")
        before = reg.snapshot()
        fam.inc(3, kind="align")
        fam.inc(2, kind="verify")  # born after the snapshot
        (entry,) = reg.diff(before)["families"]
        assert entry["name"] == "pairs_total"
        deltas = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in entry["series"]
        }
        assert deltas == {(("kind", "align"),): 3.0, (("kind", "verify"),): 2.0}

    def test_unchanged_series_and_families_omitted(self):
        reg = MetricsRegistry()
        reg.counter("quiet_total").inc(4)
        moving = reg.counter("busy_total")
        moving.inc(1)
        before = reg.snapshot()
        moving.inc(1)
        doc = reg.diff(before)
        assert [f["name"] for f in doc["families"]] == ["busy_total"]

    def test_gauge_reports_current_level_only_when_moved(self):
        reg = MetricsRegistry()
        depth = reg.gauge("depth")
        depth.set(7)
        still = reg.gauge("still")
        still.set(1)
        before = reg.snapshot()
        depth.set(3)
        (entry,) = reg.diff(before)["families"]
        assert entry["name"] == "depth"
        assert entry["series"][0]["value"] == 3  # the level, not 3 - 7

    def test_histogram_cell_deltas(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        before = reg.snapshot()
        h.observe(0.5)
        h.observe(0.5)
        (entry,) = reg.diff(before)["families"]
        (series,) = entry["series"]
        assert series["counts"] == [0, 2, 0]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(1.0)

    def test_no_change_diffs_to_empty(self):
        reg = MetricsRegistry()
        reg.counter("pairs_total").inc(2)
        before = reg.snapshot()
        assert reg.diff(before)["families"] == []

    def test_unknown_snapshot_schema_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError, match="schema"):
            reg.diff({"schema": "bogus/v0", "families": []})
