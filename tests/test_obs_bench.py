"""Tests for the perf ledger: scenarios, records, and the regression gate."""

import json

import pytest

from repro.errors import LedgerError
from repro.obs.bench import (
    GATED_FIELDS,
    LEDGER_SCHEMA,
    ScenarioResult,
    append_records,
    compare,
    config_fingerprint,
    counters_from_diff,
    latest_by_scenario,
    load_ledger,
    make_record,
    run_scenarios,
    scenario_names,
    validate_record,
)
from repro.obs.scenarios import SCENARIO_NAMES


def result(scenario="demo", **overrides):
    kwargs = dict(
        scenario=scenario,
        config={"pairs": 10, "seed": 7},
        pairs_per_second=1000.0,
        total_seconds=0.01,
        kernel_seconds=0.008,
        latency_p50_s=1e-3,
        latency_p90_s=2e-3,
        latency_p99_s=3e-3,
        info={"note": "test"},
        counters={"pim_rounds_total": 2},
    )
    kwargs.update(overrides)
    return ScenarioResult(**kwargs)


def record(scenario="demo", **overrides):
    return make_record(result(scenario, **overrides), profile="quick")


class TestFingerprint:
    def test_stable_and_order_insensitive(self):
        a = config_fingerprint({"b": 2, "a": 1})
        b = config_fingerprint({"a": 1, "b": 2})
        assert a == b
        assert len(a) == 16
        assert config_fingerprint({"a": 1, "b": 3}) != a

    def test_nested_values_matter(self):
        assert config_fingerprint({"w": [1, 2]}) != config_fingerprint(
            {"w": [2, 1]}
        )


class TestRecords:
    def test_make_record_shape(self):
        rec = record()
        assert rec["schema"] == LEDGER_SCHEMA
        assert rec["scenario"] == "demo"
        assert rec["profile"] == "quick"
        assert rec["config_fingerprint"] == config_fingerprint(rec["config"])
        assert set(GATED_FIELDS) <= set(rec)
        validate_record(rec)

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda r: r.update(schema="bogus/v0"), "schema"),
            (lambda r: r.pop("counters"), "missing keys"),
            (lambda r: r.update(profile="nightly"), "profile"),
            (lambda r: r.update(pairs_per_second=-1.0), ">= 0"),
            (lambda r: r.update(config_fingerprint="0" * 16), "fingerprint"),
            (lambda r: r.update(latency_p99_s="fast"), "number"),
        ],
    )
    def test_validate_rejects(self, mutate, match):
        rec = record()
        mutate(rec)
        with pytest.raises(LedgerError, match=match):
            validate_record(rec)


class TestLedgerFile:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.json"
        assert load_ledger(path) == []
        assert append_records(path, [record()]) == 1
        assert append_records(path, [record(), record("other")]) == 3
        loaded = load_ledger(path)
        assert [r["scenario"] for r in loaded] == ["demo", "demo", "other"]

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("{not json")
        with pytest.raises(LedgerError, match="not valid JSON"):
            load_ledger(path)

    def test_non_list_document_rejected(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps({"oops": 1}))
        with pytest.raises(LedgerError, match="JSON list"):
            load_ledger(path)

    def test_invalid_record_rejected_on_load(self, tmp_path):
        path = tmp_path / "ledger.json"
        bad = record()
        bad["pairs_per_second"] = -5.0
        path.write_text(json.dumps([bad]))
        with pytest.raises(LedgerError):
            load_ledger(path)

    def test_latest_by_scenario_keeps_last(self):
        older = record(pairs_per_second=100.0)
        newer = record(pairs_per_second=200.0)
        latest = latest_by_scenario([older, newer, record("other")])
        assert latest["demo"]["pairs_per_second"] == 200.0
        assert set(latest) == {"demo", "other"}


class TestCompare:
    def test_clean_self_compare(self):
        records = [record(), record("other")]
        assert compare(records, records) == []

    def test_throughput_drop_fails_named(self):
        baseline = [record(pairs_per_second=1000.0)]
        current = [record(pairs_per_second=800.0)]
        (failure,) = compare(current, baseline)
        assert failure.scenario == "demo"
        assert failure.metric == "pairs_per_second"
        text = str(failure)
        assert "demo" in text and "pairs_per_second" in text
        assert "1000" in text and "800" in text

    def test_latency_rise_fails(self):
        baseline = [record()]
        current = [record(latency_p99_s=3e-3 * 1.5)]
        (failure,) = compare(current, baseline)
        assert failure.metric == "latency_p99_s"

    def test_within_threshold_passes(self):
        baseline = [record(pairs_per_second=1000.0)]
        current = [record(pairs_per_second=950.0)]  # 5% < 10%
        assert compare(current, baseline) == []

    def test_missing_scenario_is_an_error(self):
        with pytest.raises(LedgerError, match="demo"):
            compare([record("other")], [record("demo")])

    def test_fingerprint_mismatch_is_incomparable(self):
        baseline = [record()]
        current = [record(config={"pairs": 99, "seed": 7})]
        with pytest.raises(LedgerError, match="fingerprint"):
            compare(current, baseline)

    def test_bad_thresholds_rejected(self):
        records = [record()]
        with pytest.raises(LedgerError):
            compare(records, records, max_throughput_drop=1.0)
        with pytest.raises(LedgerError):
            compare(records, records, max_latency_rise=-0.1)

    def test_most_regressed_first(self):
        baseline = [record(), record("other")]
        current = [
            record(pairs_per_second=500.0),  # 50% drop
            record("other", pairs_per_second=800.0),  # 20% drop
        ]
        failures = compare(current, baseline)
        assert [f.scenario for f in failures] == ["demo", "other"]


class TestScenarioCatalog:
    def test_catalog_names(self):
        assert scenario_names() == sorted(SCENARIO_NAMES)
        assert len(SCENARIO_NAMES) == 8

    def test_unknown_scenario_rejected(self):
        with pytest.raises(LedgerError, match="unknown scenario"):
            run_scenarios(names=["nope"])

    def test_bad_profile_rejected(self):
        with pytest.raises(LedgerError, match="profile"):
            run_scenarios(profile="nightly")

    def test_quick_catalog_runs_and_validates(self):
        records = run_scenarios(profile="quick")
        assert [r["scenario"] for r in records] == sorted(SCENARIO_NAMES)
        for rec in records:
            validate_record(rec)
            assert rec["pairs_per_second"] > 0
        by_name = latest_by_scenario(records)
        # modeled-counter sections ride along where a registry is wired
        assert by_name["scheduler_rounds"]["counters"]
        assert by_name["serve_replay"]["counters"]
        # identity claims surface in info
        assert (
            by_name["engine_vector_vs_scalar"]["info"]["results_identical"]
            is True
        )
        assert by_name["host_parallel"]["info"]["results_identical"] is True
        # and a fresh run gates cleanly against itself
        assert compare(records, records) == []


class TestCountersFromDiff:
    def test_counter_families_summed_and_zeroes_dropped(self):
        diff = {
            "schema": "repro.obs.metrics/v1",
            "families": [
                {
                    "name": "pim_rounds_total",
                    "kind": "counter",
                    "series": [
                        {"labels": {"w": "a"}, "value": 2},
                        {"labels": {"w": "b"}, "value": 3},
                    ],
                },
                {
                    "name": "pim_idle_total",
                    "kind": "counter",
                    "series": [{"labels": {}, "value": 0}],
                },
                {
                    "name": "queue_depth",
                    "kind": "gauge",
                    "series": [{"labels": {}, "value": 7}],
                },
            ],
        }
        assert counters_from_diff(diff) == {"pim_rounds_total": 5}

    def test_matches_live_registry_diff(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        rounds = registry.counter("pim_rounds_total", "rounds")
        registry.gauge("queue_depth", "depth").set(7)
        before = registry.snapshot()
        rounds.inc(2, w="a")
        rounds.inc(3, w="b")
        assert counters_from_diff(registry.diff(before)) == {
            "pim_rounds_total": 5.0
        }


class TestBenchCli:
    def _run(self, argv):
        from repro.cli import main

        return main(argv)

    def test_run_then_gate_passes(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.json"
        scenario = "engine_vector_vs_scalar"
        assert self._run(
            ["bench", "run", "--scenario", scenario, "--ledger", str(ledger)]
        ) == 0
        assert self._run(
            [
                "bench", "compare",
                "--ledger", str(ledger),
                "--baseline", str(ledger),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out
        assert len(load_ledger(ledger)) == 1

    def test_no_append_leaves_ledger_alone(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        assert self._run(
            [
                "bench", "run",
                "--scenario", "engine_vector_vs_scalar",
                "--ledger", str(ledger),
                "--no-append",
            ]
        ) == 0
        assert not ledger.exists()

    def test_gate_fails_on_doctored_baseline(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.json"
        scenario = "engine_vector_vs_scalar"
        assert self._run(
            ["bench", "run", "--scenario", scenario, "--ledger", str(ledger)]
        ) == 0
        records = json.loads(ledger.read_text())
        doctored = [dict(records[0])]
        doctored[0]["pairs_per_second"] *= 2  # pretend we used to be 2x faster
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doctored))
        assert self._run(
            [
                "bench", "compare",
                "--ledger", str(ledger),
                "--baseline", str(baseline),
            ]
        ) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert scenario in err and "pairs_per_second" in err

    def test_compare_without_baseline_errors(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.json"
        append_records(ledger, [record()])
        missing = tmp_path / "baseline.json"
        assert self._run(
            [
                "bench", "compare",
                "--ledger", str(ledger),
                "--baseline", str(missing),
            ]
        ) == 1
        assert "no baseline records" in capsys.readouterr().err
