"""Unit tests for wavefront containers and counters."""

import pytest

from repro.core.wavefront import OFFSET_NULL, Wavefront, WavefrontSet, WfaCounters


class TestWavefront:
    def test_basic_indexing(self):
        wf = Wavefront(-2, 3)
        assert len(wf) == 6
        wf[-2] = 4
        wf[3] = 7
        assert wf[-2] == 4
        assert wf[3] == 7

    def test_out_of_range_reads_null(self):
        wf = Wavefront(0, 2)
        assert wf[-1] == OFFSET_NULL
        assert wf[3] == OFFSET_NULL

    def test_out_of_range_write_raises(self):
        wf = Wavefront(0, 2)
        with pytest.raises(IndexError):
            wf[3] = 1

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Wavefront(2, 1)

    def test_reached(self):
        wf = Wavefront(0, 1)
        assert not wf.reached(0)
        wf[0] = 0
        assert wf.reached(0)
        assert not wf.reached(1)
        assert not wf.reached(99)  # out of range

    def test_diagonals_order(self):
        wf = Wavefront(-1, 1)
        assert list(wf.diagonals()) == [-1, 0, 1]

    def test_max_offset(self):
        wf = Wavefront(0, 2)
        wf[1] = 5
        assert wf.max_offset() == 5

    def test_trim(self):
        wf = Wavefront(-3, 3)
        for k in wf.diagonals():
            wf[k] = k + 10
        wf.trim(-1, 2)
        assert wf.lo == -1 and wf.hi == 2
        assert wf[-1] == 9
        assert wf[2] == 12
        assert wf[-2] == OFFSET_NULL  # now out of range

    def test_trim_invalid(self):
        wf = Wavefront(0, 3)
        with pytest.raises(ValueError):
            wf.trim(-1, 3)
        with pytest.raises(ValueError):
            wf.trim(2, 1)

    def test_nbytes_packed(self):
        assert Wavefront(0, 9).nbytes() == 40
        assert Wavefront(0, 0).nbytes(bytes_per_offset=2) == 2

    def test_repr_marks_unreached(self):
        wf = Wavefront(0, 1)
        wf[0] = 3
        assert "·" in repr(wf)
        assert "3" in repr(wf)


class TestWavefrontSet:
    def test_empty_detection(self):
        assert WavefrontSet().is_empty()
        wf = Wavefront(0, 0)
        ws = WavefrontSet(m=wf)
        assert ws.is_empty()
        wf[0] = 1
        assert not ws.is_empty()

    def test_nbytes_sums_components(self):
        ws = WavefrontSet(m=Wavefront(0, 1), i=Wavefront(0, 0), d=None)
        assert ws.nbytes() == 8 + 4


class TestWfaCounters:
    def test_add_accumulates(self):
        a = WfaCounters(cells_computed=10, extend_steps=5, peak_live_bytes=100)
        b = WfaCounters(cells_computed=3, extend_steps=2, peak_live_bytes=200)
        a.add(b)
        assert a.cells_computed == 13
        assert a.extend_steps == 7
        assert a.peak_live_bytes == 200  # max, not sum

    def test_metadata_bytes(self):
        c = WfaCounters(offsets_allocated=25)
        assert c.metadata_bytes() == 100
        assert c.metadata_bytes(bytes_per_offset=2) == 50
