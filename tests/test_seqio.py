"""Tests for .seq / FASTA pair I/O."""

import pytest

from repro.data.generator import ReadPair, ReadPairGenerator
from repro.data.seqio import (
    iter_seq,
    read_fasta_pairs,
    read_seq,
    write_fasta_pairs,
    write_seq,
)
from repro.errors import DataError


@pytest.fixture
def pairs():
    return ReadPairGenerator(length=20, error_rate=0.1, seed=5).pairs(8)


class TestSeqFormat:
    def test_roundtrip(self, tmp_path, pairs):
        path = tmp_path / "pairs.seq"
        assert write_seq(path, pairs) == 8
        loaded = read_seq(path)
        assert [(p.pattern, p.text) for p in loaded] == [
            (p.pattern, p.text) for p in pairs
        ]

    def test_wfa2lib_format_exactly(self, tmp_path):
        path = tmp_path / "one.seq"
        write_seq(path, [ReadPair(pattern="ACGT", text="ACCT")])
        assert path.read_text() == ">ACGT\n<ACCT\n"

    def test_iter_matches_read(self, tmp_path, pairs):
        path = tmp_path / "pairs.seq"
        write_seq(path, pairs)
        assert list(iter_seq(path)) == read_seq(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.seq"
        path.write_text("")
        assert read_seq(path) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.seq"
        path.write_text(">AC\n\n<AG\n\n")
        assert read_seq(path) == [ReadPair(pattern="AC", text="AG")]

    def test_consecutive_patterns_rejected(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text(">AC\n>AG\n<AT\n")
        with pytest.raises(DataError):
            read_seq(path)

    def test_text_without_pattern_rejected(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text("<AT\n")
        with pytest.raises(DataError):
            read_seq(path)

    def test_trailing_pattern_rejected(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text(">AC\n<AG\n>AT\n")
        with pytest.raises(DataError):
            read_seq(path)

    def test_garbage_line_rejected(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text("ACGT\n")
        with pytest.raises(DataError):
            read_seq(path)

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text(">AC\n<AG\nXX\n")
        with pytest.raises(DataError, match=":3"):
            read_seq(path)

    def test_empty_sequences_roundtrip(self, tmp_path):
        path = tmp_path / "e.seq"
        write_seq(path, [ReadPair(pattern="", text="")])
        assert read_seq(path) == [ReadPair(pattern="", text="")]


class TestGenericFasta:
    def test_roundtrip(self, tmp_path):
        from repro.data.seqio import read_fasta, write_fasta

        records = [("chr1", "ACGT" * 30), ("chr2", ""), ("plasmid", "GGCC")]
        path = tmp_path / "ref.fa"
        assert write_fasta(path, records) == 3
        assert read_fasta(path) == records

    def test_name_truncated_at_whitespace(self, tmp_path):
        from repro.data.seqio import read_fasta

        path = tmp_path / "desc.fa"
        path.write_text(">chr1 some description here\nACGT\n")
        assert read_fasta(path) == [("chr1", "ACGT")]

    def test_multiline_sequences_joined(self, tmp_path):
        from repro.data.seqio import read_fasta

        path = tmp_path / "wrap.fa"
        path.write_text(">s\nACGT\nACGT\nAC\n")
        assert read_fasta(path) == [("s", "ACGTACGTAC")]

    def test_data_before_header_rejected(self, tmp_path):
        from repro.data.seqio import read_fasta

        path = tmp_path / "bad.fa"
        path.write_text("ACGT\n>s\nAC\n")
        with pytest.raises(DataError):
            read_fasta(path)

    def test_empty_file(self, tmp_path):
        from repro.data.seqio import read_fasta

        path = tmp_path / "empty.fa"
        path.write_text("")
        assert read_fasta(path) == []


class TestFastaFormat:
    def test_roundtrip(self, tmp_path, pairs):
        path = tmp_path / "pairs.fa"
        assert write_fasta_pairs(path, pairs) == 8
        loaded = read_fasta_pairs(path)
        assert [(p.pattern, p.text) for p in loaded] == [
            (p.pattern, p.text) for p in pairs
        ]

    def test_line_wrapping(self, tmp_path):
        path = tmp_path / "wrap.fa"
        long = ReadPair(pattern="A" * 200, text="C" * 200)
        write_fasta_pairs(path, [long], width=60)
        text = path.read_text()
        assert max(len(line) for line in text.splitlines()) <= 61
        assert read_fasta_pairs(path)[0] == ReadPair(pattern="A" * 200, text="C" * 200)

    def test_odd_record_count_rejected(self, tmp_path):
        path = tmp_path / "odd.fa"
        path.write_text(">only/1\nACGT\n")
        with pytest.raises(DataError):
            read_fasta_pairs(path)

    def test_data_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fa"
        path.write_text("ACGT\n>x/1\nAC\n>x/2\nAG\n")
        with pytest.raises(DataError):
            read_fasta_pairs(path)
