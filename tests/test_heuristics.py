"""Tests for the adaptive wavefront reduction (WFA-Adapt)."""

import random

import pytest
from hypothesis import given, settings

from repro.core.aligner import WavefrontAligner
from repro.core.heuristics import AdaptiveReduction, StaticBand
from repro.core.penalties import AffinePenalties
from repro.errors import ConfigError

from conftest import make_rng, mutate, random_dna, similar_pair

PEN = AffinePenalties(4, 6, 2)


class TestConfig:
    def test_defaults_are_wfa_defaults(self):
        h = AdaptiveReduction()
        assert h.min_wavefront_length == 10
        assert h.max_distance_threshold == 50

    def test_invalid(self):
        with pytest.raises(ConfigError):
            AdaptiveReduction(min_wavefront_length=0)
        with pytest.raises(ConfigError):
            AdaptiveReduction(max_distance_threshold=0)

    def test_aligner_accepts_string_and_rejects_unknown(self):
        WavefrontAligner(PEN, heuristic="adaptive")
        with pytest.raises(Exception):
            WavefrontAligner(PEN, heuristic="nope")


class TestBehaviour:
    def test_exact_on_similar_sequences(self):
        rng = make_rng(7)
        for _ in range(20):
            p = random_dna(rng, 120)
            t = mutate(rng, p, 0.03)
            exact = WavefrontAligner(PEN).score(p, t)
            adapt = WavefrontAligner(PEN, heuristic="adaptive").align(p, t)
            assert adapt.score == exact
            adapt.cigar.validate(p, t)

    def test_trims_on_dissimilar_sequences(self):
        rng = make_rng(11)
        p = random_dna(rng, 200)
        t = random_dna(rng, 200)
        aggressive = AdaptiveReduction(
            min_wavefront_length=5, max_distance_threshold=10
        )
        r = WavefrontAligner(PEN, heuristic=aggressive).align(p, t)
        assert r.counters.heuristic_trims > 0
        assert not r.exact

    def test_reduces_work_on_dissimilar_sequences(self):
        rng = make_rng(13)
        p = random_dna(rng, 150)
        t = random_dna(rng, 150)
        exact = WavefrontAligner(PEN).align(p, t)
        adapt = WavefrontAligner(
            PEN,
            heuristic=AdaptiveReduction(
                min_wavefront_length=10, max_distance_threshold=25
            ),
        ).align(p, t)
        assert adapt.counters.cells_computed < exact.counters.cells_computed

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair(max_len=40, max_edits=8))
    def test_score_is_upper_bound_and_cigar_valid(self, pair):
        p, t = pair
        exact = WavefrontAligner(PEN).score(p, t)
        r = WavefrontAligner(
            PEN,
            heuristic=AdaptiveReduction(
                min_wavefront_length=4, max_distance_threshold=8
            ),
        ).align(p, t)
        assert r.score >= exact
        r.cigar.validate(p, t)
        assert r.cigar.score(PEN) == r.score

    def test_exactness_flag(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACGT")
        assert r.exact
        r2 = WavefrontAligner(PEN, heuristic="adaptive").align("ACGT", "ACGT")
        assert not r2.exact


class TestStaticBand:
    def test_invalid(self):
        with pytest.raises(ConfigError):
            StaticBand(band_lo=-1)

    def test_exact_within_band(self):
        rng = make_rng(21)
        for _ in range(10):
            p = random_dna(rng, 60)
            t = mutate(rng, p, 0.03)
            exact = WavefrontAligner(PEN).score(p, t)
            banded = WavefrontAligner(PEN, heuristic=StaticBand(15, 15)).score(p, t)
            assert banded == exact

    def test_upper_bound_outside_band(self):
        rng = make_rng(22)
        p = random_dna(rng, 80)
        # move a block: optimal path strays far off-diagonal
        t = p[30:] + p[:30]
        exact = WavefrontAligner(PEN).score(p, t)
        banded = WavefrontAligner(PEN, heuristic=StaticBand(3, 3)).align(p, t)
        assert banded.score >= exact
        banded.cigar.validate(p, t)

    def test_reduces_work(self):
        rng = make_rng(23)
        p = random_dna(rng, 150)
        t = random_dna(rng, 150)
        full = WavefrontAligner(PEN).align(p, t)
        band = WavefrontAligner(PEN, heuristic=StaticBand(5, 5)).align(p, t)
        assert band.counters.cells_computed < full.counters.cells_computed
        assert band.counters.heuristic_trims > 0

    def test_never_beats_banded_dp(self):
        from repro.baselines import banded_gotoh_score

        rng = make_rng(24)
        for _ in range(10):
            p = random_dna(rng, 40)
            t = mutate(rng, p, 0.1)
            band = abs(len(p) - len(t)) + 4
            wfa_banded = WavefrontAligner(
                PEN, heuristic=StaticBand(band, band)
            ).score(p, t)
            dp_banded = banded_gotoh_score(p, t, PEN, band)
            assert wfa_banded <= dp_banded

    def test_asymmetric_band(self):
        # band only above the main diagonal still aligns when the optimal
        # path needs only insertions (text longer)
        p = "ACGT" * 5
        t = p + "TTTT"
        r = WavefrontAligner(PEN, heuristic=StaticBand(0, 6)).align(p, t)
        assert r.score == PEN.gap_cost(4)
