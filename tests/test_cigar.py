"""Unit + property tests for CIGAR parsing, scoring and validation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cigar import Cigar, CigarOp
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.errors import CigarError


class TestCigarOp:
    def test_valid(self):
        op = CigarOp(3, "M")
        assert op.length == 3
        assert str(op) == "3M"

    def test_invalid_op(self):
        with pytest.raises(CigarError):
            CigarOp(1, "Z")

    def test_invalid_length(self):
        with pytest.raises(CigarError):
            CigarOp(0, "M")
        with pytest.raises(CigarError):
            CigarOp(-2, "X")

    def test_consumption_flags(self):
        assert CigarOp(1, "M").consumes_pattern and CigarOp(1, "M").consumes_text
        assert CigarOp(1, "X").consumes_pattern and CigarOp(1, "X").consumes_text
        assert not CigarOp(1, "I").consumes_pattern and CigarOp(1, "I").consumes_text
        assert CigarOp(1, "D").consumes_pattern and not CigarOp(1, "D").consumes_text


class TestParsing:
    def test_rle_roundtrip(self):
        c = Cigar.from_string("3M1X2I4D")
        assert str(c) == "3M1X2I4D"

    def test_expanded_parse(self):
        assert str(Cigar.from_string("MMMXII")) == "3M1X2I"

    def test_empty(self):
        c = Cigar.from_string("")
        assert len(c) == 0
        assert c.columns() == 0

    def test_adjacent_runs_merge(self):
        c = Cigar([CigarOp(2, "M"), CigarOp(3, "M"), CigarOp(1, "X")])
        assert str(c) == "5M1X"

    def test_malformed(self):
        for bad in ("3", "M3", "3Q", "3M4", "x3M", "3M 4X"):
            with pytest.raises(CigarError):
                Cigar.from_string(bad)

    def test_from_pair(self):
        c = Cigar.from_pair("ACGT", "AGGT")
        assert str(c) == "1M1X2M"

    def test_from_pair_length_mismatch(self):
        with pytest.raises(CigarError):
            Cigar.from_pair("AC", "A")

    def test_equality_and_hash(self):
        a = Cigar.from_string("2M1X")
        b = Cigar.from_string("MMX")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Cigar.from_string("3M")


class TestMeasurements:
    def test_lengths(self):
        c = Cigar.from_string("3M1X2I4D")
        assert c.columns() == 10
        assert c.pattern_length() == 8  # M+X+D
        assert c.text_length() == 6  # M+X+I

    def test_counts(self):
        c = Cigar.from_string("3M1X2I4D")
        assert c.counts() == {"M": 3, "X": 1, "I": 2, "D": 4}
        assert c.edit_distance() == 7

    def test_expanded(self):
        assert Cigar.from_string("2M1D").expanded() == "MMD"


class TestScoring:
    def test_affine_run_pays_one_opening(self):
        pen = AffinePenalties(4, 6, 2)
        assert Cigar.from_string("3I").score(pen) == 12
        assert Cigar.from_string("1I1D1I").score(pen) == 24  # three openings

    def test_edit_score_is_edit_distance(self):
        c = Cigar.from_string("5M2X1I3D")
        assert c.score(EditPenalties()) == c.edit_distance()

    def test_all_match_scores_zero(self):
        assert Cigar.from_string("100M").score(AffinePenalties()) == 0


class TestValidation:
    def test_valid_alignment(self):
        Cigar.from_string("2M1X1M").validate("ACGT", "ACCT")

    def test_wrong_pattern_length(self):
        with pytest.raises(CigarError):
            Cigar.from_string("3M").validate("ACGT", "ACG")

    def test_wrong_text_length(self):
        with pytest.raises(CigarError):
            Cigar.from_string("4M").validate("ACGT", "ACGTT")

    def test_match_on_unequal_chars(self):
        with pytest.raises(CigarError):
            Cigar.from_string("4M").validate("ACGT", "ACCT")

    def test_mismatch_on_equal_chars(self):
        with pytest.raises(CigarError):
            Cigar.from_string("1X3M").validate("ACGT", "ACGT")

    def test_indels(self):
        Cigar.from_string("2M2I2M").validate("ACGT", "ACTTGT")
        Cigar.from_string("2M2D2M").validate("ACTTGT", "ACGT")

    def test_apply_to_pattern_reconstructs_text(self):
        p, t = "ACGTACGT", "ACTTACG"
        c = Cigar.from_string("2M1X1M1M1M1M1D")
        c.validate(p, t)
        assert c.apply_to_pattern(p, t) == t


class TestPretty:
    def test_pretty_shape(self):
        p, t = "ACGT", "ACCT"
        out = Cigar.from_string("2M1X1M").pretty(p, t)
        lines = out.splitlines()
        assert lines[0] == "ACGT"
        assert lines[1] == "|| |"
        assert lines[2] == "ACCT"

    def test_pretty_with_gaps(self):
        out = Cigar.from_string("2M1I2M").pretty("ACGT", "ACTGT")
        assert "-" in out.splitlines()[0]


@given(
    ops=st.lists(
        st.tuples(st.integers(1, 9), st.sampled_from("MXID")), min_size=0, max_size=12
    )
)
def test_property_roundtrip_parse_format(ops):
    c = Cigar(CigarOp(n, o) for n, o in ops)
    assert Cigar.from_string(str(c)) == c
    assert Cigar.from_string(c.expanded()) == c
    assert c.columns() == sum(n for n, _ in ops)


class TestTransforms:
    def test_sam_spelling(self):
        assert Cigar.from_string("3M1X2I").sam() == "3=1X2I"
        assert Cigar.from_string("").sam() == ""

    def test_swapped_exchanges_gap_roles(self):
        c = Cigar.from_string("2M1I3M2D")
        s = c.swapped()
        assert str(s) == "2M1D3M2I"
        assert s.swapped() == c

    def test_reversed_is_involution(self):
        c = Cigar.from_string("2M1X1I4M")
        assert c.reversed().reversed() == c
        assert str(c.reversed()) == "4M1I1X2M"

    def test_transforms_against_the_aligner(self):
        """reversed()/swapped() produce valid alignments of the
        transformed sequences with identical scores."""
        from repro.core.aligner import WavefrontAligner
        from repro.core.penalties import AffinePenalties

        pen = AffinePenalties(4, 6, 2)
        p, t = "ACGTACGTAC", "ACGTTACGC"
        r = WavefrontAligner(pen).align(p, t)
        r.cigar.swapped().validate(t, p)
        assert r.cigar.swapped().score(pen) == r.score
        r.cigar.reversed().validate(p[::-1], t[::-1])
        assert r.cigar.reversed().score(pen) == r.score


@given(
    ops=st.lists(
        st.tuples(st.integers(1, 9), st.sampled_from("MXID")), min_size=0, max_size=12
    )
)
def test_property_transforms_preserve_columns(ops):
    c = Cigar(CigarOp(n, o) for n, o in ops)
    assert c.reversed().columns() == c.columns()
    assert c.swapped().columns() == c.columns()
    assert c.swapped().pattern_length() == c.text_length()
    assert c.swapped().text_length() == c.pattern_length()
    from repro.core.penalties import AffinePenalties

    pen = AffinePenalties(4, 6, 2)
    assert c.reversed().score(pen) == c.score(pen)
    assert c.swapped().score(pen) == c.score(pen)
