"""CLI surface of the QA sweep: ``repro qa``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.qa.runner import REPORT_SCHEMA


class TestQaCommand:
    def test_clean_run_exits_zero(self, capsys, tmp_path):
        report = tmp_path / "qa.jsonl"
        code = main(
            ["qa", "--trials", "20", "--seed", "42", "--report", str(report)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 disagreement(s) [OK]" in out
        assert "schema-valid report" in out
        lines = [json.loads(l) for l in report.read_text().splitlines()]
        assert lines[0]["schema"] == REPORT_SCHEMA
        assert lines[-1]["ok"] is True
        assert lines[-1]["cases_checked"] == len(lines) - 2

    def test_kill_dpu_run_still_exits_zero(self, capsys, tmp_path):
        """A persistent DPU death is requeued away: the QA verdicts are
        unchanged and the recovery shows up in the output."""
        report = tmp_path / "qa-kill.jsonl"
        code = main(
            [
                "qa", "--trials", "12", "--seed", "42",
                "--dpus", "4", "--kill-dpu", "1",
                "--report", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recovery[" in out
        assert "pair(s) re-run" in out
        summary = json.loads(report.read_text().splitlines()[-1])
        assert summary["ok"] is True
        assert summary["recovery"] is not None

    def test_reports_are_reproducible(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            assert main(
                ["qa", "--trials", "10", "--seed", "7", "--report", str(path)]
            ) == 0
        assert a.read_text() == b.read_text()

    def test_qa_help_lists_fault_flag(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as exc:
            main(["qa", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--kill-dpu" in out
        assert "--shards" in out


class TestQaShards:
    def test_sharded_sweep_matches_unsharded_verdicts(self, tmp_path):
        """--shards routes the sweep through the fleet; the per-case
        oracle verdicts must be identical to the unsharded scheduler's."""
        flat, sharded = tmp_path / "flat.jsonl", tmp_path / "sharded.jsonl"
        assert main(
            ["qa", "--trials", "24", "--seed", "11", "--report", str(flat)]
        ) == 0
        assert main(
            [
                "qa", "--trials", "24", "--seed", "11",
                "--shards", "2", "--report", str(sharded),
            ]
        ) == 0

        def cases(path):
            return [
                json.loads(l)
                for l in path.read_text().splitlines()
                if json.loads(l)["record"] == "case"
            ]

        assert cases(flat) == cases(sharded)
        header = json.loads(sharded.read_text().splitlines()[0])
        assert header["config"]["shards"] == 2

    def test_sharded_sweep_with_fault_still_agrees(self, capsys, tmp_path):
        report = tmp_path / "sharded-kill.jsonl"
        code = main(
            [
                "qa", "--trials", "16", "--seed", "42",
                "--shards", "2", "--shard-workers", "2",
                "--kill-dpu", "1", "--report", str(report),
            ]
        )
        assert code == 0
        summary = json.loads(report.read_text().splitlines()[-1])
        assert summary["ok"] is True
        assert summary["recovery"] is not None
