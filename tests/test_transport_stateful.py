"""Stateful Hypothesis test: the transport has an exactly-once *effect*.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` accumulates a
workload and a network fault plan — lossy links, duplicate injection,
delays, reorders, finite partitions, hedging on or off — through
arbitrary interleavings of rules, then flushes through a
:class:`~repro.pim.fleet.FleetCoordinator` with the modeled transport
attached.  The invariant under ANY such plan (shard 0's link is kept
fault-free so the ISSUE's >=1-live-shard liveness precondition holds,
and partitions are finite so redelivery always clears them):

* delivered pair indices are unique and cover the workload exactly —
  at-least-once delivery plus receiver-side dedup never drops a pair
  and never double-delivers one;
* results are byte-identical to a fault-free fleet baseline — the wire
  is invisible in the data;
* every round has exactly one surviving result, even when hedged
  stealing raced two executions of it — the loser is absorbed, counted
  in ``duplicates_absorbed``, never delivered;
* the transport report stays internally consistent (receipts and
  survivors cover the round set, the makespan is the run's clock).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.core.penalties import EditPenalties
from repro.data.generator import ReadPairGenerator
from repro.pim.config import PimSystemConfig
from repro.pim.fleet import FleetCoordinator
from repro.pim.kernel import KernelConfig
from repro.pim.transport import (
    LinkDelay,
    LinkDrop,
    LinkDuplicate,
    LinkReorder,
    NetworkFaultPlan,
    Partition,
    TransportPolicy,
)

NUM_DPUS = 4
SHARDS = 2

#: the faultable link (shard 0 stays clean: the liveness precondition).
FAULTY = st.just(SHARDS - 1)
DIRECTIONS = st.sampled_from(["work", "result", "both"])


def make_fleet(net_plan=None, hedge: bool = False) -> FleetCoordinator:
    return FleetCoordinator(
        PimSystemConfig(
            num_dpus=NUM_DPUS, num_ranks=1, tasklets=4, num_simulated_dpus=NUM_DPUS
        ),
        KernelConfig(penalties=EditPenalties(), max_read_len=32, max_edits=4),
        shards=SHARDS,
        net_plan=net_plan,
        transport_policy=(
            TransportPolicy(hedge=True)
            if hedge and net_plan is not None and not net_plan.is_calm()
            else None
        ),
    )


class TransportMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.pending: list = []
        self.drops: list = []
        self.duplicates: list = []
        self.delays: list = []
        self.reorders: list = []
        self.partitions: list = []
        self.hedge = False
        self.net_seed = 1

    # -- build up state -----------------------------------------------------

    @rule(n=st.integers(min_value=1, max_value=10), seed=st.integers(0, 2**16))
    def add_pairs(self, n: int, seed: int) -> None:
        gen = ReadPairGenerator(length=24, error_rate=0.05, seed=seed)
        self.pending.extend(gen.pairs(n))

    @rule(
        shard=FAULTY,
        p=st.floats(min_value=0.05, max_value=0.5),
        direction=DIRECTIONS,
    )
    def lossy_link(self, shard: int, p: float, direction: str) -> None:
        self.drops.append(LinkDrop(shard_id=shard, p=p, direction=direction))

    @rule(
        shard=FAULTY,
        p=st.floats(min_value=0.05, max_value=0.5),
        direction=DIRECTIONS,
    )
    def duplicating_link(self, shard: int, p: float, direction: str) -> None:
        self.duplicates.append(
            LinkDuplicate(shard_id=shard, p=p, direction=direction)
        )

    @rule(
        shard=FAULTY,
        delay=st.floats(min_value=0.0, max_value=2e-3),
        jitter=st.floats(min_value=0.0, max_value=1e-3),
    )
    def slow_link(self, shard: int, delay: float, jitter: float) -> None:
        self.delays.append(
            LinkDelay(shard_id=shard, delay_s=delay, jitter_s=jitter)
        )

    @rule(shard=FAULTY, p=st.floats(min_value=0.05, max_value=0.5))
    def reordering_link(self, shard: int, p: float) -> None:
        self.reorders.append(LinkReorder(shard_id=shard, p=p, penalty_s=2e-4))

    @rule(
        shard=FAULTY,
        start=st.floats(min_value=0.0, max_value=0.01),
        duration=st.floats(min_value=1e-3, max_value=0.05),
    )
    def partition_window(self, shard: int, start: float, duration: float) -> None:
        self.partitions.append(
            Partition(start_s=start, end_s=start + duration, shard_ids=(shard,))
        )

    @rule(hedge=st.booleans())
    def set_hedge(self, hedge: bool) -> None:
        self.hedge = hedge

    @rule(seed=st.integers(1, 2**16))
    def reseed(self, seed: int) -> None:
        self.net_seed = seed

    @rule()
    def calm_network(self) -> None:
        self.drops = []
        self.duplicates = []
        self.delays = []
        self.reorders = []
        self.partitions = []

    # -- flush + check ------------------------------------------------------

    def _plan(self) -> NetworkFaultPlan:
        return NetworkFaultPlan(
            seed=self.net_seed,
            drops=tuple(self.drops),
            duplicates=tuple(self.duplicates),
            delays=tuple(self.delays),
            reorders=tuple(self.reorders),
            partitions=tuple(self.partitions),
        )

    @precondition(lambda self: self.pending)
    @rule(pairs_per_round=st.integers(min_value=3, max_value=13))
    def flush(self, pairs_per_round: int) -> None:
        pairs, plan = self.pending, self._plan()
        self.pending = []
        n = len(pairs)
        fleet = make_fleet(net_plan=plan, hedge=self.hedge)
        run = fleet.run(pairs, pairs_per_round=pairs_per_round, collect_results=True)

        got = sorted(i for i, _, _ in run.results())
        assert len(got) == len(set(got)), "a pair was double-delivered"
        assert got == list(range(n)), "a pair was dropped on the wire"

        baseline = make_fleet().run(
            pairs, pairs_per_round=pairs_per_round, collect_results=True
        )
        assert sorted(run.results()) == sorted(baseline.results()), (
            "the network changed delivered data"
        )

        if fleet.transport is None:
            assert run.transport is None
            return
        report = run.transport
        rounds = run.schedule.rounds
        # exactly one survivor per round: a steal race never keeps both
        assert sorted(report.survivors) == list(range(rounds))
        assert sorted(report.receipts) == list(range(rounds))
        assert set(report.survivors.values()) <= set(range(SHARDS))
        if not self.hedge:
            assert report.steals == 0
        assert report.duplicates_absorbed >= 0
        assert run.total_seconds == report.makespan_s


TransportMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=8, deadline=None
)
TestTransportExactlyOnceEffect = TransportMachine.TestCase
