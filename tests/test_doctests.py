"""Run the doctests embedded in module/class docstrings."""

import doctest

import pytest

import repro.core.aligner

MODULES = [repro.core.aligner]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the docstring example actually ran
