"""Tests for the SLO burn-rate monitor and its serve-layer wiring."""

import json

import pytest

from repro.errors import ConfigError, ServeError
from repro.obs.slo import (
    SLO_SCHEMA,
    BurnWindow,
    SloPolicy,
    evaluate_slo,
    recompute_slo,
)


def _record(i, t, latency, status="ok"):
    """A minimal per-request record as loadgen emits them."""
    rec = {
        "record": "request",
        "request_id": f"r{i}",
        "status": status,
        "arrival_s": t,
    }
    if status == "ok":
        rec["completion_s"] = t + latency
        rec["latency_s"] = latency
    return rec


class TestPolicyValidation:
    def test_window_rejects_nonpositive_spans(self):
        with pytest.raises(ConfigError):
            BurnWindow(long_s=0.0, short_s=1e-3, threshold=10.0)
        with pytest.raises(ConfigError):
            BurnWindow(long_s=1e-2, short_s=-1e-3, threshold=10.0)

    def test_window_rejects_short_above_long(self):
        with pytest.raises(ConfigError, match="must not exceed"):
            BurnWindow(long_s=1e-3, short_s=2e-3, threshold=10.0)

    def test_window_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            BurnWindow(long_s=1e-2, short_s=1e-3, threshold=0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_target_s": 0.0},
            {"latency_percentile": 0.0},
            {"latency_percentile": 101.0},
            {"error_budget": 0.0},
            {"error_budget": 1.0},
            {"windows": ()},
        ],
    )
    def test_policy_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigError):
            SloPolicy(**kwargs)

    def test_policy_roundtrips_via_dict(self):
        policy = SloPolicy(
            latency_target_s=2e-3,
            windows=(BurnWindow(long_s=5e-3, short_s=1e-3, threshold=10.0),),
        )
        assert SloPolicy.from_dict(policy.to_dict()) == policy


class TestEvaluate:
    def test_all_good_stream(self):
        policy = SloPolicy(latency_target_s=1e-3, error_budget=0.01)
        records = [_record(i, i * 1e-3, 5e-4) for i in range(20)]
        doc = evaluate_slo(records, policy)
        assert doc["schema"] == SLO_SCHEMA
        assert (doc["requests"], doc["good"], doc["bad"]) == (20, 20, 0)
        assert doc["met"] is True
        assert doc["budget_consumed"] == 0.0
        assert doc["alerts_fired"] == doc["alerts_resolved"] == 0
        assert doc["achieved_latency_s"] == 5e-4

    def test_slow_and_rejected_requests_are_bad(self):
        policy = SloPolicy(latency_target_s=1e-3, error_budget=0.5)
        records = [
            _record(0, 0.0, 5e-4),
            _record(1, 1e-3, 2e-3),  # slower than target
            _record(2, 2e-3, 0.0, status="rejected"),
        ]
        doc = evaluate_slo(records, policy)
        assert (doc["good"], doc["bad"]) == (1, 2)
        assert doc["bad_fraction"] == pytest.approx(2 / 3)
        assert doc["met"] is False

    def test_fire_and_resolve_state_machine(self):
        # 10 good, then a burst of bad, then good again: the single
        # window fires during the burst and resolves after it.
        policy = SloPolicy(
            latency_target_s=1e-3,
            error_budget=0.1,
            windows=(BurnWindow(long_s=4e-3, short_s=2e-3, threshold=5.0),),
        )
        records = (
            [_record(i, i * 1e-3, 5e-4) for i in range(10)]
            + [_record(10 + i, (10 + i) * 1e-3, 2e-3) for i in range(4)]
            + [_record(14 + i, (20 + i) * 1e-3, 5e-4) for i in range(10)]
        )
        doc = evaluate_slo(records, policy)
        assert doc["alerts_fired"] == 1
        assert doc["alerts_resolved"] == 1
        (alert,) = doc["alerts"]
        assert alert["fired_t_s"] < alert["resolved_t_s"]
        assert alert["burn_at_fire"] >= 5.0

    def test_pure_function_of_inputs(self):
        policy = SloPolicy(latency_target_s=1e-3)
        records = [
            _record(i, i * 1e-3, 2e-3 if i % 3 == 0 else 5e-4)
            for i in range(30)
        ]
        a = json.dumps(evaluate_slo(records, policy), sort_keys=True)
        b = json.dumps(evaluate_slo(records, policy), sort_keys=True)
        assert a == b

    def test_empty_stream(self):
        doc = evaluate_slo([], SloPolicy())
        assert doc["requests"] == 0
        assert doc["met"] is True
        assert doc["achieved_latency_s"] == 0.0


class TestRecompute:
    def _doc(self):
        policy = SloPolicy(latency_target_s=1e-3, error_budget=0.2)
        records = [
            _record(i, i * 1e-3, 2e-3 if i == 5 else 5e-4) for i in range(10)
        ]
        return records, evaluate_slo(records, policy)

    def test_roundtrip(self):
        records, doc = self._doc()
        assert recompute_slo(records, doc) == doc

    def test_unknown_schema_rejected(self):
        records, doc = self._doc()
        doc["schema"] = "bogus/v9"
        with pytest.raises(ServeError, match="unknown slo schema"):
            recompute_slo(records, doc)

    def test_tampered_doc_names_the_keys(self):
        records, doc = self._doc()
        doc["good"] += 1
        doc["bad"] -= 1
        with pytest.raises(ServeError) as exc:
            recompute_slo(records, doc)
        assert "'bad'" in str(exc.value) and "'good'" in str(exc.value)

    def test_malformed_policy_rejected(self):
        records, doc = self._doc()
        doc["policy"] = {"latency_target_s": -1.0}
        with pytest.raises(ServeError, match="malformed policy"):
            recompute_slo(records, doc)


# ---------------------------------------------------------------------------
# serve-layer wiring: load replays emit a recomputable slo section, and a
# seeded chaos drill produces the fire/resolve pair plus trace annotations,
# byte-identical across host worker counts.
# ---------------------------------------------------------------------------

from repro.obs import to_chrome_trace, validate_event_log  # noqa: E402
from repro.pim.faults import DpuDeath, FaultPlan, TaskletStall  # noqa: E402
from repro.pim.health import HealthPolicy  # noqa: E402
from repro.serve import (  # noqa: E402
    FallbackPolicy,
    LoadgenConfig,
    build_service,
    run_load,
    validate_load_report,
)
from repro.serve.clock import VirtualClock  # noqa: E402

DRILL_POLICY = SloPolicy(
    latency_target_s=2e-3,
    windows=(BurnWindow(long_s=5e-3, short_s=1e-3, threshold=10.0),),
)


def drill_service(workers):
    return build_service(
        num_dpus=4,
        tasklets=4,
        workers=workers,
        max_read_len=16,
        clock=VirtualClock(),
        fault_plan=FaultPlan(
            deaths=(DpuDeath(dpu_id=1),), stalls=(TaskletStall(dpu_id=2),)
        ),
        health_policy=HealthPolicy(),
        fallback=FallbackPolicy(min_healthy_fraction=0.9),
    )


def drill_config():
    return LoadgenConfig(requests=300, rate=8000, length=10, seed=13)


class TestLoadReportSlo:
    def test_replay_emits_validated_slo_section(self):
        service = build_service(num_dpus=4, tasklets=4, clock=VirtualClock())
        policy = SloPolicy(latency_target_s=5e-3)
        report = run_load(
            service,
            LoadgenConfig(requests=60, rate=2000, length=12, seed=5),
            slo=policy,
        )
        slo = report.summary()["slo"]
        assert slo["schema"] == SLO_SCHEMA
        assert slo["policy"] == policy.to_dict()
        # the validator recomputes the section bit-for-bit
        records = [json.loads(line) for line in report.to_jsonl().splitlines()]
        validate_load_report(records)

    def test_validator_rejects_tampered_slo_section(self):
        service = build_service(num_dpus=4, tasklets=4, clock=VirtualClock())
        report = run_load(
            service,
            LoadgenConfig(requests=40, rate=2000, length=12, seed=5),
            slo=SloPolicy(latency_target_s=5e-3),
        )
        records = [json.loads(line) for line in report.to_jsonl().splitlines()]
        slo_holder = next(rec for rec in records if "slo" in rec)
        slo_holder["slo"]["good"] += 1
        with pytest.raises(ServeError, match="disagrees with recomputation"):
            validate_load_report(records)

    def test_no_slo_section_without_policy(self):
        service = build_service(num_dpus=4, tasklets=4, clock=VirtualClock())
        report = run_load(
            service, LoadgenConfig(requests=20, rate=2000, length=12, seed=5)
        )
        assert report.summary()["slo"] is None


class TestChaosDrill:
    """The acceptance scenario: kill a DPU, stall a tasklet, watch the
    burn-rate alert fire while the breaker/fallback react, then resolve."""

    @pytest.fixture(scope="class")
    def drill(self):
        def run(workers):
            service = drill_service(workers)
            report = run_load(service, drill_config(), slo=DRILL_POLICY)
            return service, report

        return run

    def test_alert_fires_and_resolves(self, drill):
        service, report = drill(0)
        slo = report.summary()["slo"]
        assert slo["alerts_fired"] == 1
        assert slo["alerts_resolved"] == 1
        (alert,) = slo["alerts"]
        assert alert["burn_at_fire"] >= 10.0
        assert alert["resolved_t_s"] > alert["fired_t_s"]
        # the same fire/resolve pair appears in the structured event log
        fires = [
            e
            for e in service.telemetry.events.events("slo_alert")
            if dict(e.attrs)["state"] == "fire"
        ]
        resolves = [
            e
            for e in service.telemetry.events.events("slo_alert")
            if dict(e.attrs)["state"] == "resolve"
        ]
        assert len(fires) == 1 and len(resolves) == 1
        assert fires[0].t_s == alert["fired_t_s"]
        assert resolves[0].t_s == alert["resolved_t_s"]

    def test_event_log_covers_every_layer(self, drill):
        service, _ = drill(0)
        kinds = service.telemetry.events.kinds_seen()
        assert kinds == {
            "breaker": 1,
            "fallback": 1,
            "slo_alert": 2,
            "watchdog": 1,
        }
        validate_event_log(service.telemetry.events.to_records())

    def test_trace_carries_annotations(self, drill):
        service, _ = drill(0)
        trace = to_chrome_trace(service.telemetry)
        notes = [
            ev
            for ev in trace["traceEvents"]
            if ev.get("cat") == "annotation"
        ]
        assert len(notes) == 5  # watchdog, breaker, fallback, 2x slo_alert
        assert all(ev["ph"] == "i" and ev["s"] == "g" for ev in notes)
        names = sorted(ev["name"] for ev in notes)
        assert names == [
            "breaker", "fallback", "slo_alert", "slo_alert", "watchdog",
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_byte_identical_across_worker_counts(self, drill, workers):
        base_service, base_report = drill(0)
        service, report = drill(workers)
        assert report.to_jsonl() == base_report.to_jsonl()
        assert (
            service.telemetry.events.to_jsonl()
            == base_service.telemetry.events.to_jsonl()
        )
        assert json.dumps(
            to_chrome_trace(service.telemetry), sort_keys=True
        ) == json.dumps(to_chrome_trace(base_service.telemetry), sort_keys=True)
