"""Tests for the telemetry exporters (Chrome trace, Prometheus, JSONL)."""

import json

import pytest

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import TelemetryError
from repro.obs import RunTelemetry
from repro.obs.export import (
    DPU_PID_BASE,
    DPU_TOTAL_TID,
    HOST_PID,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_manifest_jsonl,
    write_metrics_json,
    write_prometheus,
)
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem

PEN = AffinePenalties(4, 6, 2)
NUM_DPUS = 3
TASKLETS = 2


@pytest.fixture(scope="module")
def telemetry():
    tel = RunTelemetry()
    cfg = PimSystemConfig(
        num_dpus=NUM_DPUS,
        num_ranks=1,
        tasklets=TASKLETS,
        num_simulated_dpus=NUM_DPUS,
        workers=1,
    )
    kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=2)
    system = PimSystem(cfg, kc, telemetry=tel)
    pairs = ReadPairGenerator(length=50, error_rate=0.04, seed=4).pairs(9)
    system.align(pairs)
    tel.reconcile()
    return tel


@pytest.fixture(scope="module")
def trace_doc(telemetry):
    return to_chrome_trace(telemetry)


class TestChromeTrace:
    def test_validates(self, trace_doc):
        assert validate_chrome_trace(trace_doc) > 0

    def test_host_lane_sections(self, trace_doc):
        host = [
            e
            for e in trace_doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == HOST_PID
        ]
        names = {e["name"] for e in host}
        assert names == {"run", "transfer_in", "launch", "kernel", "transfer_out"}
        run = next(e for e in host if e["name"] == "run")
        sections = [e for e in host if e["name"] != "run"]
        assert sum(e["dur"] for e in sections) == pytest.approx(run["dur"])

    def test_per_dpu_processes(self, trace_doc):
        pids = {
            e["pid"]
            for e in trace_doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] != HOST_PID
        }
        assert pids == {DPU_PID_BASE + d for d in range(NUM_DPUS)}

    def test_kernel_total_lane(self, trace_doc):
        totals = [
            e
            for e in trace_doc["traceEvents"]
            if e["ph"] == "X" and e["tid"] == DPU_TOTAL_TID
        ]
        assert len(totals) == NUM_DPUS
        assert all(e["name"] == "dpu_kernel" for e in totals)
        assert all("bound" in e["args"] for e in totals)

    def test_tasklet_phase_lanes(self, trace_doc):
        phases = [
            e
            for e in trace_doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "tasklet"
        ]
        assert {e["tid"] for e in phases} == set(range(TASKLETS))
        assert {e["name"] for e in phases} == {
            "fetch", "align", "metadata", "writeback"
        }
        # per-lane events tile back to back: each starts where the last ended
        by_lane = {}
        for e in sorted(phases, key=lambda e: (e["pid"], e["tid"], e["ts"])):
            key = (e["pid"], e["tid"])
            if key in by_lane:
                assert e["ts"] == pytest.approx(by_lane[key])
            by_lane[key] = e["ts"] + e["dur"]

    def test_metadata_names_processes_and_threads(self, trace_doc):
        meta = [e for e in trace_doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in meta
            if e["name"] == "thread_name"
        }
        assert (HOST_PID, 0, "model timeline") in names
        assert (DPU_PID_BASE, DPU_TOTAL_TID, "kernel total") in names
        procs = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert procs == {"host"} | {f"dpu {d}" for d in range(NUM_DPUS)}

    def test_deterministic(self, telemetry):
        a = json.dumps(to_chrome_trace(telemetry), sort_keys=True)
        b = json.dumps(to_chrome_trace(telemetry), sort_keys=True)
        assert a == b


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace([])

    def test_rejects_missing_event_list(self):
        with pytest.raises(TelemetryError, match="traceEvents"):
            validate_chrome_trace({})

    @pytest.mark.parametrize(
        "event",
        [
            {"ph": "Z", "name": "x", "pid": 0, "tid": 0},  # unknown phase
            {"ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 1},  # no name
            {"ph": "X", "name": "x", "pid": "0", "tid": 0, "ts": 0, "dur": 1},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": -1, "dur": 1},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0, "dur": -1},
            {"ph": "M", "name": "weird_meta", "pid": 0, "tid": 0},
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0, "args": {}},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0, "dur": 1,
             "args": "nope"},
        ],
    )
    def test_rejects_malformed_event(self, event):
        with pytest.raises(TelemetryError, match="invalid Chrome trace"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_counts_duration_events_only(self):
        doc = {
            "traceEvents": [
                {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
                 "args": {"name": "host"}},
                {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0.0, "dur": 2.0},
            ]
        }
        assert validate_chrome_trace(doc) == 1


class TestFileExports:
    def test_write_chrome_trace(self, telemetry, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), telemetry)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert validate_chrome_trace(on_disk) > 0

    def test_write_prometheus(self, telemetry, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(str(path), telemetry.registry)
        text = path.read_text()
        assert "# TYPE pim_runs_total counter" in text
        assert 'pim_runs_total{kind="align"} 1' in text
        assert "pim_dpu_kernel_seconds_bucket" in text

    def test_write_manifest_jsonl(self, telemetry, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_manifest_jsonl(str(path), telemetry)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2  # one run + summary
        assert lines[0]["type"] == "run"
        assert lines[-1]["type"] == "summary"
        assert lines[-1]["runs"] == 1
        assert lines[-1]["metrics"]["schema"] == "repro.obs.metrics/v1"

    def test_write_metrics_json(self, telemetry, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), telemetry)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.obs/v1"
        assert doc["model_seconds_total"] == pytest.approx(
            telemetry.model_seconds_total
        )


def _make_telemetry(engine, workers):
    tel = RunTelemetry()
    cfg = PimSystemConfig(
        num_dpus=NUM_DPUS,
        num_ranks=1,
        tasklets=TASKLETS,
        num_simulated_dpus=NUM_DPUS,
        workers=workers,
    )
    kc = KernelConfig(
        penalties=PEN, max_read_len=50, max_edits=2, engine=engine
    )
    system = PimSystem(cfg, kc, telemetry=tel)
    pairs = ReadPairGenerator(length=50, error_rate=0.04, seed=4).pairs(9)
    system.align(pairs)
    tel.reconcile()
    return tel


class TestVectorEngineExports:
    """Every export surface is byte-identical under the vector engine,
    at every worker count."""

    @pytest.mark.parametrize("workers", [0, 1, 3])
    def test_exports_identical_scalar_vs_vector(self, workers, tmp_path):
        scalar = _make_telemetry("scalar", workers)
        vector = _make_telemetry("vector", workers)
        assert json.dumps(
            to_chrome_trace(scalar), sort_keys=True
        ) == json.dumps(to_chrome_trace(vector), sort_keys=True)
        for name, tel in (("scalar", scalar), ("vector", vector)):
            write_prometheus(str(tmp_path / f"{name}.prom"), tel.registry)
            write_metrics_json(str(tmp_path / f"{name}.json"), tel)
        assert (tmp_path / "scalar.prom").read_text() == (
            tmp_path / "vector.prom"
        ).read_text()

        # wall-clock observations are the one legitimate difference —
        # everything modeled must match once they are masked out
        def modeled_only(node):
            if isinstance(node, dict):
                return {
                    k: modeled_only(v)
                    for k, v in node.items()
                    if "wall" not in k
                }
            if isinstance(node, list):
                return [modeled_only(v) for v in node]
            return node

        docs = [
            modeled_only(json.loads((tmp_path / f"{n}.json").read_text()))
            for n in ("scalar", "vector")
        ]
        assert docs[0] == docs[1]

    def test_vector_trace_identical_across_workers(self):
        docs = [
            json.dumps(to_chrome_trace(_make_telemetry("vector", w)),
                       sort_keys=True)
            for w in (0, 1, 3)
        ]
        assert docs[0] == docs[1] == docs[2]
