"""Tests for the custom two-level allocator (the paper's contribution)."""

import pytest

from repro.errors import AllocationError
from repro.pim.allocator import BumpAllocator, TaskletAllocator


class TestBumpAllocator:
    def test_blocks_are_8_byte_aligned(self):
        arena = BumpAllocator(0, 1024, "wram")
        a = arena.alloc(5)
        b = arena.alloc(3)
        assert a.addr % 8 == 0 and b.addr % 8 == 0
        assert a.size == 8 and b.size == 8
        assert b.addr == a.addr + 8

    def test_base_offset_respected(self):
        arena = BumpAllocator(4096, 64, "mram")
        assert arena.alloc(8).addr == 4096

    def test_unaligned_base_rejected(self):
        with pytest.raises(AllocationError):
            BumpAllocator(4, 64, "wram")

    def test_exhaustion(self):
        arena = BumpAllocator(0, 16, "wram")
        arena.alloc(8)
        arena.alloc(8)
        with pytest.raises(AllocationError, match="exhausted"):
            arena.alloc(1)

    def test_reset_frees_everything(self):
        arena = BumpAllocator(0, 16, "wram")
        arena.alloc(16)
        arena.reset()
        assert arena.alloc(16).addr == 0

    def test_high_water_tracks_peak(self):
        arena = BumpAllocator(0, 64, "wram")
        arena.alloc(32)
        arena.reset()
        arena.alloc(8)
        assert arena.high_water == 32
        assert arena.used == 8
        assert arena.free == 56

    def test_zero_byte_alloc_takes_one_granule(self):
        arena = BumpAllocator(0, 16, "wram")
        assert arena.alloc(0).size == 8

    def test_negative_rejected(self):
        with pytest.raises(AllocationError):
            BumpAllocator(0, 16, "wram").alloc(-8)
        with pytest.raises(AllocationError):
            BumpAllocator(0, -1, "wram")


class TestTaskletAllocator:
    def make(self, policy: str = "mram") -> TaskletAllocator:
        return TaskletAllocator(
            wram_base=0,
            wram_capacity=256,
            mram_base=1 << 16,
            mram_capacity=4096,
            metadata_policy=policy,
        )

    def test_buffers_always_in_wram(self):
        alloc = self.make("mram")
        a = alloc.alloc_buffer(16)
        assert a.space == "wram"
        assert a.addr < 256

    def test_metadata_placement_follows_policy(self):
        assert self.make("mram").alloc_metadata(64).space == "mram"
        assert self.make("wram").alloc_metadata(64).space == "wram"

    def test_unknown_policy_rejected(self):
        with pytest.raises(AllocationError):
            self.make("cache")

    def test_wram_policy_shares_arena_with_buffers(self):
        alloc = self.make("wram")
        alloc.alloc_buffer(128)
        alloc.alloc_metadata(120)
        with pytest.raises(AllocationError):
            alloc.alloc_metadata(64)

    def test_mram_policy_keeps_wram_free(self):
        alloc = self.make("mram")
        alloc.alloc_buffer(128)
        for _ in range(16):
            alloc.alloc_metadata(128)  # 2048 bytes of MRAM
        assert alloc.wram.used == 128

    def test_reset_metadata_only_touches_mram(self):
        alloc = self.make("mram")
        alloc.alloc_buffer(64)
        alloc.alloc_metadata(256)
        alloc.reset_metadata()
        assert alloc.mram.used == 0
        assert alloc.wram.used == 64

    def test_mark_release_scoped_frees(self):
        alloc = self.make("wram")
        alloc.alloc_buffer(64)
        mark = alloc.wram_mark()
        alloc.alloc_metadata(64)
        alloc.alloc_metadata(64)
        alloc.wram_release(mark)
        assert alloc.wram.used == 64

    def test_invalid_release_mark(self):
        alloc = self.make("wram")
        with pytest.raises(AllocationError):
            alloc.wram_release(8)  # beyond cursor
        alloc.alloc_buffer(16)
        with pytest.raises(AllocationError):
            alloc.wram_release(-1)

    def test_all_metadata_blocks_are_dmaable(self):
        """Every metadata block must satisfy the DMA alignment contract."""
        alloc = self.make("mram")
        for nbytes in (1, 4, 7, 12, 100):
            a = alloc.alloc_metadata(nbytes)
            assert a.addr % 8 == 0
            assert a.size % 8 == 0
            assert a.size >= nbytes
