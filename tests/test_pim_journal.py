"""Write-ahead journal + crash-resume (repro.pim.journal)."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core.penalties import EditPenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import DegradedCapacity, JournalError
from repro.obs.metrics import MetricsRegistry
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan, RetryPolicy
from repro.pim.health import FleetHealth, HealthPolicy
from repro.pim.journal import (
    JOURNAL_SCHEMA,
    RunJournal,
    result_from_dict,
    result_to_dict,
    workload_fingerprint,
)
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem

NUM_DPUS = 4


def small_system(workers=1) -> PimSystem:
    return PimSystem(
        PimSystemConfig(
            num_dpus=NUM_DPUS,
            num_ranks=1,
            tasklets=4,
            num_simulated_dpus=NUM_DPUS,
            workers=workers,
        ),
        kernel_config=KernelConfig(
            penalties=EditPenalties(), max_read_len=40, max_edits=4
        ),
    )


from repro.pim.kernel import KernelConfig  # noqa: E402


def workload(n: int = 30):
    return ReadPairGenerator(length=32, error_rate=0.05, seed=7).pairs(n)


def run_key(run) -> list:
    """Everything a caller can observe from a ScheduledRun, JSON-stable."""
    return [
        [result_to_dict(r) for r in run.per_round],
        run.recovery.to_dict() if run.recovery is not None else None,
        run.total_seconds,
        run.kernel_seconds,
        run.recovery_seconds,
    ]


class TestFingerprint:
    def test_same_inputs_same_fingerprint(self):
        pairs = workload(8)
        a = workload_fingerprint(pairs, 4, 4, 4, "mram", True)
        b = workload_fingerprint(workload(8), 4, 4, 4, "mram", True)
        assert a == b

    def test_outcome_determining_inputs_change_it(self):
        pairs = workload(8)
        base = workload_fingerprint(pairs, 4, 4, 4, "mram", True)
        assert workload_fingerprint(pairs[:-1], 4, 4, 4, "mram", True) != base
        assert workload_fingerprint(pairs, 8, 4, 4, "mram", True) != base
        assert workload_fingerprint(pairs, 4, 8, 4, "mram", True) != base
        assert (
            workload_fingerprint(
                pairs, 4, 4, 4, "mram", True,
                fault_plan=FaultPlan(deaths=(DpuDeath(dpu_id=0),)),
                retry_policy=RetryPolicy(),
            )
            != base
        )
        assert (
            workload_fingerprint(
                pairs, 4, 4, 4, "mram", True, health_policy=HealthPolicy()
            )
            != base
        )

    def test_fingerprint_is_json_stable(self):
        doc = workload_fingerprint(
            workload(4), 4, 4, 4, "mram", False,
            fault_plan=FaultPlan(deaths=(DpuDeath(dpu_id=1),)),
            retry_policy=RetryPolicy(),
            health_policy=HealthPolicy(),
        )
        assert json.loads(json.dumps(doc)) == doc

    def test_placement_knobs_stay_out_of_the_fingerprint(self):
        """Regression pin: neither ``workers`` nor ``shards`` may ever
        enter the fingerprint.  Host parallelism and shard placement
        cannot change results, so a run journaled under one layout
        must resume under any other.  The shard count is still pinned
        against accidental mixing — but in the fleet manifest
        (``repro.pim.fleet/v1``), where
        :meth:`~repro.pim.fleet.FleetCoordinator.resume_run` checks it
        explicitly instead of through the fingerprint.
        """
        doc = workload_fingerprint(
            workload(4), 4, 4, 4, "mram", True,
            fault_plan=FaultPlan(deaths=(DpuDeath(dpu_id=1),)),
            retry_policy=RetryPolicy(),
            health_policy=HealthPolicy(),
        )
        assert "workers" not in doc
        assert "shards" not in doc

    def test_shards_live_in_the_fleet_manifest_instead(self, tmp_path):
        from repro.pim.config import PimSystemConfig
        from repro.pim.fleet import FleetCoordinator

        fleet = FleetCoordinator(
            PimSystemConfig(
                num_dpus=NUM_DPUS, num_ranks=1, tasklets=4,
                num_simulated_dpus=NUM_DPUS,
            ),
            KernelConfig(penalties=EditPenalties(), max_read_len=40, max_edits=4),
            shards=2,
        )
        journal = tmp_path / "journal"
        fleet.run(workload(12), pairs_per_round=4, journal=journal)
        manifest = FleetCoordinator.load_manifest(journal)
        assert manifest["shards"] == 2
        assert "shards" not in manifest["fingerprint"]
        assert "workers" not in manifest["fingerprint"]
        # and the manifest-level pin actually bites
        mismatched = FleetCoordinator(
            PimSystemConfig(
                num_dpus=NUM_DPUS, num_ranks=1, tasklets=4,
                num_simulated_dpus=NUM_DPUS,
            ),
            KernelConfig(penalties=EditPenalties(), max_read_len=40, max_edits=4),
            shards=4,
        )
        with pytest.raises(JournalError, match="shards"):
            mismatched.resume_run(journal, workload(12), pairs_per_round=4)


class TestResultRoundTrip:
    def test_plain_run_round_trips(self):
        run = small_system().align(workload(12), collect_results=True)
        rebuilt = result_from_dict(json.loads(json.dumps(result_to_dict(run))))
        assert result_to_dict(rebuilt) == result_to_dict(run)
        assert rebuilt.total_seconds == run.total_seconds
        assert [(i, s, str(c)) for i, s, c in rebuilt.results] == [
            (i, s, str(c)) for i, s, c in run.results
        ]

    def test_faulty_run_round_trips_recovery(self):
        plan = FaultPlan(deaths=(DpuDeath(dpu_id=1, attempts=(0,)),))
        run = small_system().align(
            workload(12), collect_results=True, fault_plan=plan
        )
        rebuilt = result_from_dict(json.loads(json.dumps(result_to_dict(run))))
        assert rebuilt.recovery is not None
        assert rebuilt.recovery.to_dict() == run.recovery.to_dict()
        assert rebuilt.recovery_overhead_seconds == run.recovery_overhead_seconds

    def test_malformed_record_raises_journal_error(self):
        with pytest.raises(JournalError, match="malformed round record"):
            result_from_dict({"num_pairs": 1})


class TestRunJournalFile:
    def fingerprint(self):
        return workload_fingerprint(workload(4), 4, NUM_DPUS, 4, "mram", True)

    def test_create_load_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal.create(path, self.fingerprint())
        run = small_system().align(workload(4), collect_results=True)
        journal.append_round(0, 0, 4, run)
        loaded = RunJournal.load(path)
        assert loaded.header["schema"] == JOURNAL_SCHEMA
        assert loaded.fingerprint == self.fingerprint()
        assert list(loaded.rounds()) == [0]
        assert loaded.rounds()[0]["result"] == result_to_dict(run)

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal.create(path, self.fingerprint())
        run = small_system().align(workload(4), collect_results=True)
        journal.append_round(0, 0, 4, run)
        with open(path, "a") as fh:
            fh.write('{"type": "round", "index": 1, "trunc')  # torn write
        loaded = RunJournal.load(path)
        assert list(loaded.rounds()) == [0]

    def test_malformed_middle_record_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.create(path, self.fingerprint())
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write('{"type": "round", "index": 0}\n')
        with pytest.raises(JournalError, match="malformed record at line 2"):
            RunJournal.load(path)

    def test_missing_empty_and_foreign_files_raise(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            RunJournal.load(tmp_path / "absent.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(JournalError, match="empty"):
            RunJournal.load(empty)
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text('{"schema": "something/else"}\n')
        with pytest.raises(JournalError, match="not a repro.pim.journal/v1"):
            RunJournal.load(foreign)

    def test_fingerprint_mismatch_names_the_keys(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal.create(path, self.fingerprint())
        other = workload_fingerprint(workload(4), 2, NUM_DPUS, 4, "mram", True)
        with pytest.raises(JournalError, match="pairs_per_round"):
            journal.validate_fingerprint(other)

    def test_first_record_per_index_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal.create(path, self.fingerprint())
        run = small_system().align(workload(4), collect_results=True)
        journal.append_round(0, 0, 4, run)
        doctored = dict(journal.records[0])
        doctored["size"] = 999
        journal._records.append(doctored)
        assert journal.rounds()[0]["size"] == 4


def truncate_after(path, k: int) -> None:
    """Simulate a crash: keep the header plus the first ``k`` records."""
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[: 1 + k]) + "\n")


class TestCrashResume:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_resume_is_byte_identical(self, tmp_path, workers):
        """Acceptance pin: truncate the journal at a record boundary
        after round k, resume, and get byte-identical results, recovery
        report, and recovery-metric snapshots — sequential and pooled."""
        pairs = workload(30)
        plan = FaultPlan(seed=5, deaths=(DpuDeath(dpu_id=1, attempts=(0,)),))
        policy = RetryPolicy(max_attempts=2, backoff_base_s=1e-3)

        full_path = tmp_path / "full.jsonl"
        uninterrupted = BatchScheduler(small_system(workers=workers)).run(
            pairs, pairs_per_round=10, collect_results=True,
            fault_plan=plan, retry_policy=policy, journal=full_path,
        )
        assert uninterrupted.rounds_replayed == 0

        for k in range(3):  # crash after round k completes, k = 0..2
            crash_path = tmp_path / f"crash{k}.jsonl"
            crash_path.write_text(full_path.read_text())
            truncate_after(crash_path, k + 1)
            resumed = BatchScheduler(small_system(workers=workers)).resume_run(
                crash_path, pairs, pairs_per_round=10, collect_results=True,
                fault_plan=plan, retry_policy=policy,
            )
            assert resumed.rounds_replayed == k + 1
            assert run_key(resumed) == run_key(uninterrupted)
            # the resumed journal is rebuilt to the full three rounds
            assert crash_path.read_text() == full_path.read_text()
            # recovery-derived metrics agree exactly
            reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
            uninterrupted.recovery.count_into(reg_a)
            resumed.recovery.count_into(reg_b)
            assert reg_a.snapshot() == reg_b.snapshot()

    def test_resume_with_health_reconstructs_quarantine(self, tmp_path):
        """Breaker decisions replay identically: a resume that replays
        the round that opened a breaker must quarantine the same DPU at
        the same modeled time in the remaining rounds."""
        pairs = workload(30)
        plan = FaultPlan(deaths=(DpuDeath(dpu_id=2),))
        policy = RetryPolicy(max_attempts=2, backoff_base_s=1e-3)
        health_policy = HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9)

        def fresh_health():
            return FleetHealth(NUM_DPUS, policy=health_policy)

        full_path = tmp_path / "full.jsonl"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            h1 = fresh_health()
            uninterrupted = BatchScheduler(small_system()).run(
                pairs, pairs_per_round=10, collect_results=True,
                fault_plan=plan, retry_policy=policy, health=h1,
                journal=full_path,
            )
            crash_path = tmp_path / "crash.jsonl"
            crash_path.write_text(full_path.read_text())
            truncate_after(crash_path, 2)
            h2 = fresh_health()
            resumed = BatchScheduler(small_system()).resume_run(
                crash_path, pairs, pairs_per_round=10, collect_results=True,
                fault_plan=plan, retry_policy=policy, health=h2,
            )
        assert resumed.rounds_replayed == 2
        assert run_key(resumed) == run_key(uninterrupted)
        assert h1.states() == h2.states()
        assert h1.states()[2] == "open"
        assert [r.active_dpus for r in resumed.per_round] == [
            r.active_dpus for r in uninterrupted.per_round
        ]

    def test_resume_refuses_wrong_workload(self, tmp_path):
        pairs = workload(20)
        path = tmp_path / "run.jsonl"
        BatchScheduler(small_system()).run(
            pairs, pairs_per_round=10, collect_results=True, journal=path
        )
        with pytest.raises(JournalError, match="fingerprint"):
            BatchScheduler(small_system()).resume_run(
                path, workload(10), pairs_per_round=10, collect_results=True
            )

    def test_resume_refuses_out_of_range_round(self, tmp_path):
        pairs = workload(20)
        path = tmp_path / "run.jsonl"
        journal_run = BatchScheduler(small_system()).run(
            pairs, pairs_per_round=10, collect_results=True, journal=path
        )
        assert journal_run.schedule.rounds == 2
        doc = json.loads(path.read_text().splitlines()[1])
        doc["index"] = 7
        with open(path, "a") as fh:
            fh.write(json.dumps(doc) + "\n")
        with pytest.raises(JournalError, match="out of range"):
            BatchScheduler(small_system()).resume_run(
                path, pairs, pairs_per_round=10, collect_results=True
            )

    def test_fully_journaled_run_resumes_without_device_work(self, tmp_path):
        pairs = workload(20)
        path = tmp_path / "run.jsonl"
        first = BatchScheduler(small_system()).run(
            pairs, pairs_per_round=10, collect_results=True, journal=path
        )
        resumed = BatchScheduler(small_system()).resume_run(
            path, pairs, pairs_per_round=10, collect_results=True
        )
        assert resumed.rounds_replayed == 2
        assert run_key(resumed) == run_key(first)


class TestJournalCli:
    def test_pim_align_journal_and_resume(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.seqio import write_seq

        reads = tmp_path / "reads.seq"
        write_seq(reads, workload(24))
        journal = tmp_path / "run.jsonl"
        args = [
            "pim-align", "-i", str(reads), "--dpus", "4", "--tasklets", "2",
            "--pairs-per-round", "8", "--journal", str(journal),
        ]
        assert main(args) == 0
        full = journal.read_text()
        assert len(full.splitlines()) == 4  # header + 3 rounds
        capsys.readouterr()

        truncate_after(journal, 1)
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "3 (1)" in out  # 3 rounds, 1 replayed
        assert journal.read_text() == full

    def test_resume_without_journal_errors(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.seqio import write_seq

        reads = tmp_path / "reads.seq"
        write_seq(reads, workload(4))
        assert main(["pim-align", "-i", str(reads), "--resume"]) == 1
        assert "--resume requires --journal" in capsys.readouterr().err
