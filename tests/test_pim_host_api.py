"""Tests for the SDK-style host API facade."""

import pytest

from repro.baselines.gotoh import gotoh_score
from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError, PimError
from repro.pim.host_api import dpu_alloc
from repro.pim.kernel import KernelConfig, WfaDpuKernel
from repro.pim.layout import MramLayout

PEN = AffinePenalties(4, 6, 2)


def make_layout(kc: KernelConfig, per_dpu: int, tasklets: int) -> MramLayout:
    return MramLayout.plan(
        num_pairs=per_dpu,
        max_pattern_len=kc.max_seq_len,
        max_text_len=kc.max_seq_len,
        max_cigar_ops=kc.max_cigar_ops,
        tasklets=tasklets,
        metadata_bytes_per_tasklet=kc.metadata_peak_bytes(),
    )


class TestSdkFlow:
    def test_full_cycle(self):
        kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=2)
        gen = ReadPairGenerator(length=60, error_rate=0.03, seed=40)
        batches = [gen.pairs(6) for _ in range(4)]
        layout = make_layout(kc, 6, tasklets=2)

        with dpu_alloc(4) as dpu_set:
            dpu_set.load(WfaDpuKernel(kc))
            moved = dpu_set.copy_to(layout, batches)
            assert moved > 0
            stats = dpu_set.launch(tasklets=2)
            assert len(stats) == 4
            assert all(s.pairs_done == 6 for s in stats)
            gathered = dpu_set.copy_from()

        for batch, results in zip(batches, gathered):
            for pair, (score, cigar) in zip(batch, results):
                assert score == gotoh_score(pair.pattern, pair.text, PEN)
                cigar.validate(pair.pattern, pair.text)

    def test_uneven_batches(self):
        kc = KernelConfig(penalties=PEN, max_read_len=40, max_edits=1)
        gen = ReadPairGenerator(length=40, error_rate=0.02, seed=41)
        batches = [gen.pairs(3), gen.pairs(1), gen.pairs(0)]
        layout = make_layout(kc, 3, tasklets=1)
        with dpu_alloc(3) as dpu_set:
            dpu_set.load(WfaDpuKernel(kc))
            dpu_set.copy_to(layout, batches)
            stats = dpu_set.launch(tasklets=1)
            assert [s.pairs_done for s in stats] == [3, 1, 0]
            gathered = dpu_set.copy_from()
            assert [len(g) for g in gathered] == [3, 1, 0]


class TestErrorPaths:
    def test_launch_without_load(self):
        with dpu_alloc(1) as dpu_set:
            with pytest.raises(PimError, match="kernel"):
                dpu_set.launch(tasklets=1)

    def test_launch_without_data(self):
        kc = KernelConfig(penalties=PEN, max_read_len=40, max_edits=1)
        with dpu_alloc(1) as dpu_set:
            dpu_set.load(WfaDpuKernel(kc))
            with pytest.raises(PimError, match="input"):
                dpu_set.launch(tasklets=1)

    def test_copy_from_without_layout(self):
        with dpu_alloc(1) as dpu_set:
            with pytest.raises(PimError):
                dpu_set.copy_from()

    def test_batch_count_mismatch(self):
        kc = KernelConfig(penalties=PEN, max_read_len=40, max_edits=1)
        layout = make_layout(kc, 1, tasklets=1)
        with dpu_alloc(2) as dpu_set:
            dpu_set.load(WfaDpuKernel(kc))
            with pytest.raises(ConfigError, match="one batch per DPU"):
                dpu_set.copy_to(layout, [[]])

    def test_use_after_free(self):
        dpu_set = dpu_alloc(1)
        dpu_set.free()
        with pytest.raises(PimError, match="freed"):
            dpu_set.load(WfaDpuKernel(KernelConfig()))

    def test_zero_dpus_rejected(self):
        with pytest.raises(ConfigError):
            dpu_alloc(0)
