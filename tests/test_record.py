"""Tests for machine-readable experiment records."""

import json

import pytest

from repro.cli import main
from repro.experiments.fig1 import Fig1Config, run_fig1
from repro.experiments.record import fig1_to_dict, sweep_to_dict, write_record
from repro.experiments.sweeps import allocator_policy_ablation


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(
        Fig1Config(
            cpu_sample_pairs=80, pim_sample_pairs_per_dpu=16, num_simulated_dpus=1
        )
    )


class TestFig1Record:
    def test_schema(self, fig1):
        rec = fig1_to_dict(fig1)
        assert rec["schema_version"] == 1
        assert rec["experiment"] == "fig1"
        assert len(rec["panels"]) == 2
        panel = rec["panels"][0]
        assert panel["error_rate"] == 0.02
        assert set(panel["cpu_seconds_by_threads"]) == {
            "1", "2", "4", "8", "16", "32", "56",
        }
        assert panel["pim"]["total_seconds"] > panel["pim"]["kernel_seconds"]
        assert panel["total_speedup"] > 1.0

    def test_paper_targets_embedded(self, fig1):
        rec = fig1_to_dict(fig1)
        assert rec["paper_targets"]["kernel_speedup_e2"] == 37.4

    def test_json_serializable(self, fig1):
        text = json.dumps(fig1_to_dict(fig1))
        assert "kernel_seconds" in text

    def test_write_record_roundtrip(self, fig1, tmp_path):
        path = write_record(fig1_to_dict(fig1), tmp_path / "fig1.json")
        loaded = json.loads(path.read_text())
        assert loaded["experiment"] == "fig1"


class TestSweepRecord:
    def test_schema(self):
        sweep = allocator_policy_ablation(sample_pairs_per_dpu=8)
        rec = sweep_to_dict(sweep)
        assert rec["experiment"] == "sweep"
        assert rec["columns"] == sweep.columns
        assert {r["label"] for r in rec["rows"]} == {"wram", "mram"}
        json.dumps(rec)  # serializable


class TestCliJson:
    def test_fig1_json_flag(self, tmp_path, capsys):
        out = tmp_path / "record.json"
        rc = main(["fig1", "--quick", "--json", str(out)])
        assert rc == 0
        loaded = json.loads(out.read_text())
        assert loaded["experiment"] == "fig1"
        assert "machine-readable record" in capsys.readouterr().out
