"""Micro-batcher and service accounting tests.

Two layers:

* unit tests pinning the batcher's flush policy (size wins immediately,
  deadline flushes the stragglers, drain empties unconditionally) and
  the virtual clock's deterministic timer semantics;
* a stateful Hypothesis machine driving the *whole service* through
  arbitrary interleavings of submit / clock-advance / cancel / drain,
  holding the accounting invariant at every step::

      submitted == completed + rejected + in_flight

  where ``rejected`` counts admission rejections, cancellations and
  fault-abandoned requests, and ``in_flight`` is the number of live,
  unresolved futures.  Nothing is lost, nothing is double-counted.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.data.generator import ReadPair
from repro.errors import ConfigError, Overloaded, RequestCancelled, ServeError
from repro.serve import (
    AlignRequest,
    BatchPolicy,
    MicroBatcher,
    ServiceConfig,
    VirtualClock,
    WorkItem,
    build_service,
)

PAIR = ReadPair(pattern="ACGTACGT", text="ACGTACGA")


def item(seq: int, arrival: float = 0.0, request_seq: int = 0) -> WorkItem:
    return WorkItem(
        seq=seq, request_seq=request_seq, offset=0, pair=PAIR, arrival_s=arrival
    )


class TestVirtualClock:
    def test_timers_fire_in_deadline_then_registration_order(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(2.0, lambda: fired.append("b"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_at(2.0, lambda: fired.append("c"))
        clock.advance_to(5.0)
        assert fired == ["a", "b", "c"]
        assert clock.now() == 5.0

    def test_cancelled_timers_never_fire(self):
        clock = VirtualClock()
        fired = []
        timer = clock.call_at(1.0, lambda: fired.append("x"))
        timer.cancel()
        clock.advance(2.0)
        assert fired == []
        assert clock.next_timer() is None

    def test_callback_may_schedule_into_the_same_sweep(self):
        clock = VirtualClock()
        fired = []

        def first():
            fired.append(clock.now())
            clock.call_later(1.0, lambda: fired.append(clock.now()))

        clock.call_at(1.0, first)
        clock.advance_to(3.0)
        assert fired == [1.0, 2.0]

    def test_backwards_advance_rejected(self):
        clock = VirtualClock(start=5.0)
        with pytest.raises(ServeError):
            clock.advance_to(4.0)
        with pytest.raises(ServeError):
            clock.advance(-1.0)


class TestMicroBatcher:
    def test_size_trigger_flushes_immediately(self):
        b = MicroBatcher(BatchPolicy(max_batch_pairs=3, max_wait_s=1.0))
        assert b.add([item(0), item(1)], now=0.0) == []
        [batch] = b.add([item(2), item(3)], now=0.0)
        assert batch.reason == "size"
        assert [i.seq for i in batch.items] == [0, 1, 2]
        assert b.pending_pairs == 1

    def test_one_add_can_emit_multiple_full_batches(self):
        b = MicroBatcher(BatchPolicy(max_batch_pairs=2, max_wait_s=1.0))
        batches = b.add([item(i) for i in range(5)], now=0.0)
        assert [batch.reason for batch in batches] == ["size", "size"]
        assert [[i.seq for i in batch.items] for batch in batches] == [[0, 1], [2, 3]]
        assert b.pending_pairs == 1

    def test_deadline_follows_oldest_pending_pair(self):
        b = MicroBatcher(BatchPolicy(max_batch_pairs=100, max_wait_s=0.5))
        assert b.next_deadline() is None
        b.add([item(0, arrival=1.0)], now=1.0)
        b.add([item(1, arrival=1.3)], now=1.3)
        assert b.next_deadline() == 1.5
        assert b.take_due(now=1.4) == []
        [batch] = b.take_due(now=1.5)
        assert batch.reason == "deadline"
        assert batch.num_pairs == 2
        assert batch.wait_s == pytest.approx(0.5)
        assert b.next_deadline() is None

    def test_drain_flushes_everything(self):
        # size flushes keep pending < cap, so drain sees the remainder
        b = MicroBatcher(BatchPolicy(max_batch_pairs=2, max_wait_s=10.0))
        size_batches = b.add([item(i) for i in range(3)], now=0.0)
        assert [batch.num_pairs for batch in size_batches] == [2]
        batches = b.drain(now=0.0)
        assert [batch.num_pairs for batch in batches] == [1]
        assert all(batch.reason == "drain" for batch in batches)
        assert b.pending_pairs == 0
        assert b.drain(now=0.0) == []

    def test_remove_request_drops_only_that_request(self):
        b = MicroBatcher(BatchPolicy(max_batch_pairs=100, max_wait_s=1.0))
        b.add(
            [item(0, request_seq=7), item(1, request_seq=8), item(2, request_seq=7)],
            now=0.0,
        )
        assert b.remove_request(7) == 2
        assert b.pending_pairs == 1
        assert b.stats.pending_pairs == 1

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            BatchPolicy(max_batch_pairs=0)
        with pytest.raises(ConfigError):
            BatchPolicy(max_wait_s=-1.0)


# -- stateful service accounting --------------------------------------------

POOL = [
    ReadPair(pattern="ACGTACGTACGT", text="ACGTACGAACGT"),
    ReadPair(pattern="TTTTCCCCGGGG", text="TTTTCCCAGGGG"),
    ReadPair(pattern="AAAACCCC", text="AAAACCCC"),
    ReadPair(pattern="GATTACAGATTA", text="GATTACCGATTA"),
]


class ServiceAccountingMachine(RuleBasedStateMachine):
    """submit / advance / cancel / drain in any order; counts always add up."""

    def __init__(self):
        super().__init__()
        self.service = build_service(
            num_dpus=2,
            tasklets=2,
            workers=1,
            max_read_len=16,
            max_edits=3,
            config=ServiceConfig(
                max_batch_pairs=4,
                max_wait_s=1e-3,
                max_queue_pairs=12,
                cache_pairs=4,
            ),
            with_telemetry=False,
        )
        self.clock = self.service.clock
        self.live = []  # futures not yet observed as done
        self.submitted = 0

    @rule(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(POOL) - 1), min_size=1, max_size=3
        )
    )
    def submit(self, picks):
        request = AlignRequest(
            client="c0",
            request_id=f"r{self.submitted}",
            pairs=tuple(POOL[p] for p in picks),
        )
        self.submitted += 1
        try:
            self.live.append(self.service.submit(request))
        except Overloaded:
            pass

    @rule(steps=st.integers(min_value=0, max_value=4))
    def advance(self, steps):
        self.clock.advance(steps * 5e-4)

    @rule()
    def drain(self):
        self.service.drain()

    @precondition(lambda self: any(not f.done() for f in self.live))
    @rule()
    def cancel_one(self):
        future = next(f for f in self.live if not f.done())
        cancelled = self.service.cancel(future)
        if cancelled:
            assert isinstance(future.exception(), RequestCancelled)

    @invariant()
    def accounting_adds_up(self):
        stats = self.service.stats
        assert stats.submitted == self.submitted
        assert stats.submitted == stats.completed + stats.rejected + stats.in_flight
        assert stats.in_flight >= 0
        assert self.service.queue_pairs >= 0

    def teardown(self):
        self.service.drain()
        stats = self.service.stats
        assert stats.in_flight == 0
        assert stats.submitted == stats.completed + stats.rejected
        # every accepted future resolved exactly one way
        for future in self.live:
            assert future.done()
            if future.exception() is None:
                response = future.result()
                assert len(response.scores) == len(response.cigars)


ServiceAccountingMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestServiceAccounting = ServiceAccountingMachine.TestCase
