"""Tests for simulated MRAM/WRAM memories."""

import pytest

from repro.errors import MemoryFault
from repro.pim.memory import Mram, SimMemory, Wram


class TestSimMemory:
    def test_write_read_roundtrip(self):
        mem = SimMemory(1024)
        mem.write(8, b"hello")
        assert mem.read(8, 5) == b"hello"

    def test_unwritten_reads_zero(self):
        mem = SimMemory(64)
        assert mem.read(0, 8) == b"\x00" * 8

    def test_bounds_enforced(self):
        mem = SimMemory(16)
        with pytest.raises(MemoryFault):
            mem.read(8, 9)
        with pytest.raises(MemoryFault):
            mem.write(16, b"x")
        with pytest.raises(MemoryFault):
            mem.read(-1, 4)
        with pytest.raises(MemoryFault):
            mem.read(0, -4)

    def test_capacity_validation(self):
        with pytest.raises(MemoryFault):
            SimMemory(0)

    def test_lazy_backing_growth(self):
        mem = SimMemory(64 * 1024 * 1024)
        assert len(mem._data) == 0
        mem.write(1024, b"x")
        assert len(mem._data) <= 2048  # grew only to what was touched

    def test_access_accounting(self):
        mem = SimMemory(64)
        mem.write(0, b"abcd")
        mem.read(0, 2)
        mem.read(2, 2)
        assert mem.bytes_written == 4
        assert mem.bytes_read == 4
        assert mem.write_ops == 1
        assert mem.read_ops == 2
        mem.reset_counters()
        assert mem.bytes_read == 0

    def test_typed_helpers(self):
        mem = SimMemory(64)
        mem.write_u32(0, 0xDEADBEEF)
        assert mem.read_u32(0) == 0xDEADBEEF
        mem.write_i32(4, -12345)
        assert mem.read_i32(4) == -12345
        mem.write_u64(8, 2**40 + 7)
        assert mem.read_u64(8) == 2**40 + 7

    def test_typed_range_checks(self):
        mem = SimMemory(64)
        with pytest.raises(MemoryFault):
            mem.write_u32(0, 2**32)
        with pytest.raises(MemoryFault):
            mem.write_i32(0, 2**31)
        with pytest.raises(MemoryFault):
            mem.write_u64(0, -1)

    def test_little_endian_layout(self):
        mem = SimMemory(16)
        mem.write_u32(0, 1)
        assert mem.read(0, 4) == b"\x01\x00\x00\x00"


class TestDpuMemories:
    def test_default_capacities(self):
        assert Wram().capacity == 64 * 1024
        assert Mram().capacity == 64 * 1024 * 1024

    def test_host_traffic_accounting(self):
        mram = Mram()
        mram.host_write(0, b"abcdefgh")
        data = mram.host_read(0, 8)
        assert data == b"abcdefgh"
        assert mram.host_bytes_in == 8
        assert mram.host_bytes_out == 8

    def test_host_and_dpu_traffic_separate(self):
        mram = Mram()
        mram.host_write(0, b"ab")
        mram.write(8, b"cd")  # DPU-side write
        assert mram.host_bytes_in == 2
        assert mram.bytes_written == 4  # both paths hit the array
