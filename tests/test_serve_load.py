"""Deterministic load tests for the alignment service.

Everything here runs on a :class:`~repro.serve.clock.VirtualClock`: a
1000-request soak completes in wall-milliseconds, and because both the
trace and the service are deterministic, modeled p50/p99 latencies are
reproducible **bit for bit** across runs — and across host worker
counts (``workers=0`` vs ``workers=2``), which is the end-to-end
determinism pin this PR's acceptance hangs on: identical trace + seed
must give byte-identical responses, RecoveryReport, and metrics
snapshot, with the cache on or off, under an injected DPU-death fault
plan.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.data.generator import ReadPair
from repro.errors import DegradedCapacity, Overloaded
from repro.pim.faults import DpuDeath, FaultPlan
from repro.serve import (
    AlignRequest,
    AsyncAlignmentService,
    LoadgenConfig,
    ServiceConfig,
    arrival_times,
    build_service,
    build_trace,
    percentile,
    run_load,
    validate_load_report,
)


def make_service(workers=1, cache_pairs=0, fault_plan=None, **cfg):
    config = ServiceConfig(
        max_batch_pairs=cfg.pop("max_batch_pairs", 16),
        max_wait_s=cfg.pop("max_wait_s", 1e-3),
        max_queue_pairs=cfg.pop("max_queue_pairs", 4096),
        cache_pairs=cache_pairs,
    )
    return build_service(
        num_dpus=2,
        tasklets=2,
        workers=workers,
        max_read_len=16,
        max_edits=3,
        config=config,
        fault_plan=fault_plan,
        **cfg,
    )


class TestArrivalProcesses:
    def test_uniform_spacing(self):
        times = arrival_times(LoadgenConfig(requests=5, rate=100.0))
        assert times == [0.0, 0.01, 0.02, 0.03, 0.04]

    def test_bursty_lands_in_bursts(self):
        times = arrival_times(
            LoadgenConfig(requests=6, rate=100.0, process="bursty", burst=3)
        )
        assert times == [0.0, 0.0, 0.0, 0.03, 0.03, 0.03]

    def test_ramp_gaps_shrink(self):
        times = arrival_times(
            LoadgenConfig(requests=50, rate=100.0, process="ramp", rate_end=1000.0)
        )
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g2 <= g1 + 1e-12 for g1, g2 in zip(gaps, gaps[1:]))
        assert gaps[-1] < gaps[0] / 5

    def test_trace_is_deterministic(self):
        cfg = LoadgenConfig(requests=30, seed=9, length=12)
        assert build_trace(cfg) == build_trace(cfg)


class TestSoak:
    def test_uniform_1000_requests_nothing_lost_or_reordered(self):
        service = make_service(cache_pairs=128)
        config = LoadgenConfig(
            requests=1000, rate=20000.0, length=10, seed=1, clients=5
        )
        trace = build_trace(config)

        delivery_order = []
        futures = []
        for when, request in trace:
            service.clock.advance_to(when)
            future = service.submit(request)
            future.add_done_callback(
                lambda f, r=request: delivery_order.append((r.client, r.request_id))
            )
            futures.append((request, future))
        service.drain()

        # nothing lost, nothing duplicated: exactly one terminal outcome
        # per request, ids preserved
        assert service.stats.submitted == 1000
        assert service.stats.completed == 1000
        assert service.stats.rejected == 0
        assert service.stats.in_flight == 0
        assert len(delivery_order) == 1000
        assert len(set(delivery_order)) == 1000
        for request, future in futures:
            response = future.result()
            assert response.request_id == request.request_id
            assert response.num_pairs == request.num_pairs
            assert response.latency_s >= 0

        # never reordered within a client (delivery follows submission)
        per_client = {}
        for client, rid in delivery_order:
            per_client.setdefault(client, []).append(rid)
        for client, rids in per_client.items():
            assert rids == sorted(rids), f"client {client} saw reordered responses"

    @pytest.mark.parametrize("process", ["uniform", "bursty", "ramp"])
    def test_report_reproducible_bit_for_bit(self, process):
        config = LoadgenConfig(
            requests=200, rate=10000.0, process=process, length=10, seed=7
        )
        first = run_load(make_service(cache_pairs=64), config)
        second = run_load(make_service(cache_pairs=64), config)
        assert first.to_jsonl() == second.to_jsonl()
        summary = validate_load_report(first.to_records())
        assert summary["completed"] + summary["rejected"] == 200
        # the summary's percentiles are nearest-rank over the records
        latencies = sorted(
            r.latency_s for r in first.records if r.status == "ok"
        )
        assert summary["latency_p50_s"] == percentile(latencies, 50)
        assert summary["latency_p99_s"] == percentile(latencies, 99)

    def test_workers_zero_and_two_give_identical_reports(self):
        config = LoadgenConfig(requests=60, rate=10000.0, length=10, seed=3)
        sequential = run_load(make_service(workers=1), config)
        pooled = run_load(make_service(workers=2), config)
        auto = run_load(make_service(workers=0), config)
        assert sequential.to_jsonl() == pooled.to_jsonl() == auto.to_jsonl()


class TestDeterminismPin:
    """The acceptance pin: byte-identical everything across workers,
    cache settings, under an injected mid-batch DPU death."""

    FAULT = FaultPlan(deaths=(DpuDeath(dpu_id=1, attempts=(0,)),))

    def run_one(self, workers, cache_pairs):
        service = make_service(
            workers=workers, cache_pairs=cache_pairs, fault_plan=self.FAULT
        )
        config = LoadgenConfig(requests=50, rate=10000.0, length=10, seed=11)
        report = run_load(service, config)
        responses = report.to_jsonl()
        recovery = json.dumps(report.recovery, sort_keys=True)
        metrics = json.dumps(service.metrics_snapshot(), sort_keys=True)
        return responses, recovery, metrics

    @pytest.mark.parametrize("cache_pairs", [0, 32])
    def test_workers_invisible_under_faults(self, cache_pairs):
        base_responses, base_recovery, base_metrics = self.run_one(0, cache_pairs)
        for workers in (1, 2):
            responses, recovery, metrics = self.run_one(workers, cache_pairs)
            assert responses == base_responses
            assert recovery == base_recovery
            assert metrics == base_metrics

    def test_fault_plan_actually_fired_and_recovered(self):
        service = make_service(workers=1, fault_plan=self.FAULT)
        report = run_load(
            service, LoadgenConfig(requests=50, rate=10000.0, length=10, seed=11)
        )
        assert report.recovery is not None
        assert report.recovery["faults_seen"] > 0
        assert report.recovery["abandoned_pairs"] == []
        # recovery is invisible in the data: fault-free run, same answers
        clean = run_load(
            make_service(workers=1),
            LoadgenConfig(requests=50, rate=10000.0, length=10, seed=11),
        )
        strip = lambda rep: [
            (r.client, r.request_id, r.status, r.pairs) for r in rep.records
        ]
        assert strip(report) == strip(clean)


class TestBackpressure:
    def test_overload_raises_typed_error_and_accounts(self):
        service = make_service(max_queue_pairs=4, max_batch_pairs=64, max_wait_s=1.0)
        pair = ReadPair(pattern="ACGTACGT", text="ACGTACGA")
        accepted, overloaded = 0, 0
        for i in range(10):
            try:
                service.submit(
                    AlignRequest(client="c", request_id=f"r{i}", pairs=(pair,))
                )
                accepted += 1
            except Overloaded as exc:
                overloaded += 1
                assert exc.limit == 4
                assert exc.queued_pairs + 1 > 4
        assert accepted == 4 and overloaded == 6
        stats = service.stats
        assert stats.submitted == 10 and stats.rejected == 6
        service.drain()
        assert service.stats.completed == 4

    def test_loadgen_records_rejections(self):
        service = make_service(
            max_queue_pairs=2, max_batch_pairs=64, max_wait_s=10.0
        )
        report = run_load(
            service, LoadgenConfig(requests=20, rate=1e9, length=8, seed=2)
        )
        summary = validate_load_report(report.to_records())
        assert summary["rejected"] > 0
        assert summary["completed"] + summary["rejected"] == 20

    def test_queue_drains_as_modeled_time_passes(self):
        service = make_service(max_queue_pairs=8, max_batch_pairs=2, max_wait_s=1e-4)
        pair = ReadPair(pattern="ACGTACGT", text="ACGTACGA")
        for i in range(4):
            service.submit(
                AlignRequest(client="c", request_id=f"r{i}", pairs=(pair,))
            )
        assert service.queue_pairs > 0
        service.clock.advance(10.0)  # all modeled completions pass
        assert service.queue_pairs == 0


class TestEdgeCases:
    def test_empty_request_completes_immediately(self):
        service = make_service()
        future = service.submit(AlignRequest(client="c", request_id="r0", pairs=()))
        assert future.done()
        response = future.result()
        assert response.scores == () and response.cigars == ()
        assert response.latency_s == 0.0
        assert service.stats.completed == 1

    def test_cancel_before_dispatch_only(self):
        service = make_service(max_wait_s=1.0, max_batch_pairs=64)
        pair = ReadPair(pattern="ACGTACGT", text="ACGTACGA")
        f0 = service.submit(AlignRequest(client="c", request_id="r0", pairs=(pair,)))
        assert service.cancel(f0) is True
        assert service.cancel(f0) is False  # already resolved
        f1 = service.submit(AlignRequest(client="c", request_id="r1", pairs=(pair,)))
        service.drain()
        assert service.cancel(f1) is False  # already dispatched + resolved
        assert f1.result().scores
        assert service.stats.to_dict() == {
            "submitted": 2, "completed": 1, "rejected": 1, "in_flight": 0,
        }

    def test_metrics_cover_the_request_path(self):
        service = make_service(cache_pairs=8, max_batch_pairs=2)
        pair = ReadPair(pattern="ACGTACGT", text="ACGTACGA")
        for i in range(4):
            service.submit(
                AlignRequest(client="c", request_id=f"r{i}", pairs=(pair,))
            )
        service.drain()
        snap = service.metrics_snapshot()
        flat = json.dumps(snap)
        for name in (
            "serve_requests_total",
            "serve_pairs_total",
            "serve_queue_pairs",
            "serve_batches_total",
            "serve_batch_pairs",
            "serve_request_latency_seconds",
            "serve_cache_lookups_total",
        ):
            assert name in flat, f"missing metric family {name}"


class TestAsyncFacade:
    def test_align_roundtrip_on_virtual_clock(self):
        import asyncio

        async def scenario():
            # max_batch_pairs=1: every submit size-flushes, no timer needed
            service = make_service(max_batch_pairs=1, cache_pairs=4)
            facade = AsyncAlignmentService(service)
            pair = ReadPair(pattern="ACGTACGT", text="ACGTACGA")
            first = await facade.align(
                AlignRequest(client="c", request_id="r0", pairs=(pair,))
            )
            again = await facade.align(
                AlignRequest(client="c", request_id="r1", pairs=(pair,))
            )
            return first, again

        first, again = asyncio.run(scenario())
        assert first.scores == again.scores
        assert first.cigars == again.cigars
        assert again.cached == (True,)

    def test_overload_propagates_through_await(self):
        import asyncio

        async def scenario():
            service = make_service(
                max_queue_pairs=1, max_wait_s=10.0, max_batch_pairs=64
            )
            facade = AsyncAlignmentService(service)
            pair = ReadPair(pattern="ACGTACGT", text="ACGTACGA")
            await_first = service.submit(
                AlignRequest(client="c", request_id="r0", pairs=(pair,))
            )
            with pytest.raises(Overloaded):
                await facade.align(
                    AlignRequest(client="c", request_id="r1", pairs=(pair,))
                )
            await facade.drain()
            return await_first

        future = asyncio.run(scenario())
        assert future.result().scores


class TestFleetSoak:
    """1000-request soak through a 4-shard fleet with a gutted shard.

    The injected fault plan kills 3 of shard 0's 4 DPUs (global fault
    domain), so the per-shard circuit breakers quarantine shard 0 and
    the coordinator rebalances batches onto shards 1-3.  The pin: the
    schema-valid load report is bit-identical across two runs, no
    request is lost or abandoned, the rebalance shows up in the
    federated event log — and sharding plus recovery stay invisible in
    the actual alignments.
    """

    FAULT = FaultPlan(
        seed=3,
        deaths=(DpuDeath(dpu_id=0), DpuDeath(dpu_id=1), DpuDeath(dpu_id=2)),
    )

    def make_fleet_service(self, shards=4, fault_plan=None):
        from repro.pim.health import HealthPolicy

        # small batches: the soak must span many dispatches so the
        # quarantine edge (and its rebalance event) happens mid-stream
        config = ServiceConfig(
            max_batch_pairs=8, max_wait_s=1e-3, max_queue_pairs=4096
        )
        return build_service(
            num_dpus=4,
            tasklets=2,
            max_read_len=16,
            max_edits=3,
            config=config,
            fault_plan=fault_plan,
            health_policy=HealthPolicy(),
            shards=shards,
        )

    def test_1000_request_soak_bit_identical_with_rebalance(self):
        from repro.obs.events import validate_event_log

        config = LoadgenConfig(
            requests=1000, rate=20000.0, length=10, seed=13, clients=5
        )
        reports, fleets = [], []
        for _ in range(2):
            service = self.make_fleet_service(fault_plan=self.FAULT)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedCapacity)
                reports.append(run_load(service, config))
            fleets.append(service.dispatcher.fleet)

        # bit-identical across runs, schema-valid, nothing lost
        assert reports[0].to_jsonl() == reports[1].to_jsonl()
        summary = validate_load_report(reports[0].to_records())
        assert summary["completed"] == 1000
        assert reports[0].recovery is not None
        assert reports[0].recovery["abandoned_pairs"] == []

        # the dying shard surfaced as a rebalance in the event log
        records = fleets[0].event_records()
        validate_event_log(records)
        kinds = {r["kind"] for r in records[1:]}
        assert "rebalance" in kinds, f"no rebalance event among {sorted(kinds)}"
        rebalance = [r for r in records[1:] if r["kind"] == "rebalance"]
        assert any(r["attrs"]["excluded"] == "0" for r in rebalance)
        assert fleets[0].available_shards(reports[0].records[-1].completion_s) == (
            1,
            2,
            3,
        )

    def test_sharding_and_recovery_invisible_in_alignments(self):
        """Same trace through shards=4-with-faults and an unsharded
        fault-free service: every response byte-identical."""
        config = LoadgenConfig(requests=64, rate=20000.0, length=10, seed=13)
        trace = build_trace(config)

        def answers(service):
            futures = []
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedCapacity)
                for when, request in trace:
                    service.clock.advance_to(when)
                    futures.append(service.submit(request))
                service.drain()
            return [
                (f.result().request_id, f.result().scores, f.result().cigars)
                for f in futures
            ]

        fleet_service = self.make_fleet_service(fault_plan=self.FAULT)
        plain = self.make_fleet_service(shards=1)
        assert answers(fleet_service) == answers(plain)


class TestEngineDefault:
    """The vector engine is the serve default; scalar stays as the
    escape hatch, and the two replay byte-identically."""

    def test_build_service_defaults_to_vector(self):
        service = make_service()
        kernel = service.dispatcher.scheduler.system.kernel_config
        assert kernel.engine == "vector"
        escape = make_service(engine="scalar")
        kernel = escape.dispatcher.scheduler.system.kernel_config
        assert kernel.engine == "scalar"

    def test_replay_byte_identical_across_engines(self):
        from repro.serve.clock import VirtualClock

        def replay(engine):
            service = build_service(
                num_dpus=4,
                tasklets=4,
                max_read_len=16,
                clock=VirtualClock(),
                engine=engine,
            )
            config = LoadgenConfig(requests=80, rate=2000, length=12, seed=9)
            return run_load(service, config).to_jsonl()

        assert replay("scalar") == replay("vector")

    def test_cli_defaults_to_vector_with_scalar_escape_hatch(self):
        from repro.cli import build_parser

        parser = build_parser()
        serve = parser.parse_args(["serve"])
        assert serve.engine == "vector"
        pim = parser.parse_args(["pim-align", "-i", "reads.jsonl"])
        assert pim.engine == "vector"
        escape = parser.parse_args(["serve", "--engine", "scalar"])
        assert escape.engine == "scalar"
