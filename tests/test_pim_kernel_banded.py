"""Tests for the banded-DP DPU kernel (the comparison kernel)."""

import pytest

from repro.baselines.banded import banded_gotoh_score
from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import KernelError
from repro.pim.config import DpuConfig, HostTransferConfig
from repro.pim.dpu import Dpu
from repro.pim.kernel_banded import BandedDpuKernel, BandedKernelConfig
from repro.pim.layout import MramLayout
from repro.pim.transfer import HostTransferEngine

PEN = AffinePenalties(4, 6, 2)


def run_banded(pairs, config: BandedKernelConfig, tasklets: int = 2):
    kernel = BandedDpuKernel(config)
    dpu = Dpu(DpuConfig())
    layout = MramLayout.plan(
        num_pairs=len(pairs),
        max_pattern_len=config.max_read_len,
        max_text_len=config.max_read_len,
        max_cigar_ops=2,
        tasklets=tasklets,
        metadata_bytes_per_tasklet=0,
    )
    HostTransferEngine(HostTransferConfig()).push_batch(dpu, layout, pairs)
    assignments = [list(range(t, len(pairs), tasklets)) for t in range(tasklets)]
    stats = kernel.run(dpu, layout, assignments)
    return kernel, dpu, layout, stats


class TestConfig:
    def test_validation(self):
        with pytest.raises(KernelError):
            BandedKernelConfig(max_read_len=0)
        with pytest.raises(KernelError):
            BandedKernelConfig(band=0)

    def test_row_bytes_aligned(self):
        assert BandedKernelConfig(max_read_len=100).row_bytes % 8 == 0


class TestPlanning:
    def test_short_reads_admit_many_tasklets(self):
        k = BandedDpuKernel(BandedKernelConfig(max_read_len=104, band=4))
        assert k.max_supported_tasklets(DpuConfig()) >= 16

    def test_long_reads_cap_tasklets(self):
        """Banded DP's WRAM pressure scales with read length, not E."""
        short = BandedDpuKernel(BandedKernelConfig(max_read_len=104, band=4))
        long_ = BandedDpuKernel(BandedKernelConfig(max_read_len=2000, band=4))
        assert long_.max_supported_tasklets(DpuConfig()) < short.max_supported_tasklets(
            DpuConfig()
        )

    def test_plan_check_raises(self):
        k = BandedDpuKernel(BandedKernelConfig(max_read_len=5000, band=4))
        with pytest.raises(KernelError):
            k.plan_check(DpuConfig(), 24)
        with pytest.raises(KernelError):
            k.plan_check(DpuConfig(), 0)


class TestExecution:
    def test_scores_match_host_banded(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.04, seed=9).pairs(10)
        cfg = BandedKernelConfig(max_read_len=64, band=5)
        _, dpu, layout, stats = run_banded(pairs, cfg)
        assert sum(s.pairs_done for s in stats) == 10
        for i, pair in enumerate(pairs):
            rec = dpu.mram.read(layout.result_addr(i), layout.result_record_size)
            score, cigar = layout.unpack_result(rec)
            assert cigar is None
            assert score == banded_gotoh_score(pair.pattern, pair.text, PEN, 5)

    def test_cells_independent_of_similarity(self):
        gen_same = ReadPairGenerator(length=50, error_rate=0.0, seed=1)
        gen_diff = ReadPairGenerator(length=50, error_rate=0.1, seed=1)
        cfg = BandedKernelConfig(max_read_len=60, band=6)
        kernel = BandedDpuKernel(cfg)
        same = kernel.cells_for(50, 50)
        assert same == kernel.cells_for(50, 50)
        # cells depend only on geometry
        _, _, _, s1 = run_banded(gen_same.pairs(4), cfg)
        _, _, _, s2 = run_banded(gen_diff.pairs(4), cfg)
        assert sum(t.cells_computed for t in s1) == pytest.approx(
            sum(t.cells_computed for t in s2), rel=0.15
        )

    def test_unalignable_pair_raises(self):
        from repro.data.generator import ReadPair

        bad = ReadPair(pattern="A" * 50, text="A" * 5)
        cfg = BandedKernelConfig(max_read_len=60, band=3)
        with pytest.raises(KernelError, match="band"):
            run_banded([bad], cfg, tasklets=1)

    def test_oversized_layout_rejected(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.0, seed=2).pairs(2)
        kernel = BandedDpuKernel(BandedKernelConfig(max_read_len=32, band=3))
        dpu = Dpu(DpuConfig())
        layout = MramLayout.plan(
            num_pairs=2,
            max_pattern_len=64,
            max_text_len=64,
            max_cigar_ops=2,
            tasklets=1,
            metadata_bytes_per_tasklet=0,
        )
        with pytest.raises(KernelError, match="input buffer"):
            kernel.run(dpu, layout, [[0, 1]])
