"""Tests for PIM architecture configuration."""

import pytest

from repro.errors import ConfigError
from repro.pim.config import (
    DpuConfig,
    DpuTimingConfig,
    HostTransferConfig,
    PimSystemConfig,
    upmem_paper_system,
    upmem_single_rank,
)


class TestTiming:
    def test_paper_clock(self):
        assert DpuTimingConfig().frequency_hz == 425e6

    def test_seconds_conversion(self):
        t = DpuTimingConfig(frequency_hz=425e6)
        assert t.seconds(425e6) == pytest.approx(1.0)

    def test_dma_cycles_affine_in_beats(self):
        t = DpuTimingConfig()
        assert t.dma_cycles(8) == pytest.approx(t.dma_setup_cycles + t.dma_cycles_per_8b)
        assert t.dma_cycles(16) == pytest.approx(
            t.dma_setup_cycles + 2 * t.dma_cycles_per_8b
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            DpuTimingConfig(frequency_hz=0).validate()
        with pytest.raises(ConfigError):
            DpuTimingConfig(pipeline_period=0).validate()
        with pytest.raises(ConfigError):
            DpuTimingConfig(dma_cycles_per_8b=0).validate()


class TestDpuConfig:
    def test_upmem_capacities(self):
        d = DpuConfig()
        assert d.mram_bytes == 64 * 1024 * 1024
        assert d.wram_bytes == 64 * 1024
        assert d.max_tasklets == 24

    def test_validation(self):
        with pytest.raises(ConfigError):
            DpuConfig(max_tasklets=25).validate()
        with pytest.raises(ConfigError):
            DpuConfig(mram_bytes=0).validate()


class TestTransferConfig:
    def test_effective_below_peak(self):
        t = HostTransferConfig()
        assert t.effective_to_dpu_bytes_per_s <= t.peak_to_dpu_bytes_per_s
        assert t.effective_from_dpu_bytes_per_s <= t.peak_from_dpu_bytes_per_s

    def test_validation(self):
        with pytest.raises(ConfigError):
            HostTransferConfig(effective_to_dpu_bytes_per_s=0).validate()
        with pytest.raises(ConfigError):
            HostTransferConfig(launch_overhead_s=-1).validate()


class TestSystemConfig:
    def test_paper_preset(self):
        cfg = upmem_paper_system()
        assert cfg.num_dpus == 2560
        assert cfg.num_ranks == 40
        assert cfg.dpus_per_rank == 64
        assert cfg.metadata_policy == "mram"

    def test_single_rank_preset_fully_simulated(self):
        cfg = upmem_single_rank()
        assert cfg.num_dpus == 64
        assert cfg.num_simulated_dpus == 64

    def test_validation(self):
        with pytest.raises(ConfigError):
            PimSystemConfig(num_dpus=0).validate()
        with pytest.raises(ConfigError):
            PimSystemConfig(num_dpus=100, num_ranks=3).validate()
        with pytest.raises(ConfigError):
            PimSystemConfig(tasklets=0).validate()
        with pytest.raises(ConfigError):
            PimSystemConfig(tasklets=25).validate()
        with pytest.raises(ConfigError):
            PimSystemConfig(num_simulated_dpus=0).validate()
        with pytest.raises(ConfigError):
            PimSystemConfig(num_simulated_dpus=4000).validate()
        with pytest.raises(ConfigError):
            PimSystemConfig(metadata_policy="flash").validate()

    def test_with_helper(self):
        cfg = upmem_paper_system().with_(tasklets=8)
        assert cfg.tasklets == 8
        assert cfg.num_dpus == 2560
