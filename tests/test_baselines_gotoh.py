"""Tests for the Gotoh gap-affine DP baseline (the oracle itself)."""

import pytest
from hypothesis import given, settings

from repro.baselines.gotoh import gotoh_align, gotoh_score
from repro.core.penalties import AffinePenalties, EditPenalties, LinearPenalties

from conftest import affine_penalties, similar_pair

PEN = AffinePenalties(4, 6, 2)


class TestKnownCases:
    def test_identical(self):
        assert gotoh_score("ACGT", "ACGT", PEN) == 0

    def test_empty(self):
        assert gotoh_score("", "", PEN) == 0
        assert gotoh_score("", "AC", PEN) == 10
        assert gotoh_score("AC", "", PEN) == 10

    def test_mismatch(self):
        assert gotoh_score("GATTACA", "GATCACA", PEN) == 4

    def test_gap(self):
        assert gotoh_score("AAAA", "AAAAA", PEN) == 8
        assert gotoh_score("AAAA", "AAAATT", PEN) == 10

    def test_affine_prefers_one_long_gap(self):
        # one 2-gap (10) beats two 1-gaps (16)
        assert gotoh_score("AACC", "AATTCC", PEN) == 10

    def test_edit_params(self):
        assert gotoh_score("ACGT", "AGT", EditPenalties()) == 1

    def test_linear_params(self):
        assert gotoh_score("ACGT", "AGT", LinearPenalties(4, 2)) == 2


class TestAlignVersion:
    def test_score_agreement(self):
        s, c = gotoh_align("GATTACA", "GATCACA", PEN)
        assert s == 4
        assert c.score(PEN) == 4
        c.validate("GATTACA", "GATCACA")

    def test_empty_cases(self):
        s, c = gotoh_align("", "ACG", PEN)
        assert s == 12 and str(c) == "3I"
        s, c = gotoh_align("ACG", "", PEN)
        assert s == 12 and str(c) == "3D"
        s, c = gotoh_align("", "", PEN)
        assert s == 0 and c.columns() == 0

    @settings(max_examples=80, deadline=None)
    @given(pair=similar_pair(max_len=30, max_edits=8))
    def test_align_matches_score_and_validates(self, pair):
        p, t = pair
        s = gotoh_score(p, t, PEN)
        s2, c = gotoh_align(p, t, PEN)
        assert s == s2
        c.validate(p, t)
        assert c.score(PEN) == s

    @settings(max_examples=40, deadline=None)
    @given(pair=similar_pair(max_len=20, max_edits=8), pen=affine_penalties)
    def test_random_penalties_consistent(self, pair, pen):
        p, t = pair
        s, c = gotoh_align(p, t, pen)
        c.validate(p, t)
        assert c.score(pen) == s == gotoh_score(p, t, pen)


class TestSymmetry:
    @settings(max_examples=40, deadline=None)
    @given(pair=similar_pair(max_len=25, max_edits=6))
    def test_score_symmetric_under_swap(self, pair):
        # gap-affine global alignment cost is symmetric in its arguments
        p, t = pair
        assert gotoh_score(p, t, PEN) == gotoh_score(t, p, PEN)

    def test_triangle_like_bound(self):
        # aligning via an intermediate can't beat direct alignment
        a, b = "ACGTACGT", "ACTTACGG"
        direct = gotoh_score(a, b, PEN)
        assert direct <= gotoh_score(a, "ACTTACGT", PEN) + gotoh_score(
            "ACTTACGT", b, PEN
        )
