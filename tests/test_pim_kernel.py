"""Tests for the WFA DPU kernel: planning, execution, fidelity."""

import pytest

from repro.baselines.gotoh import gotoh_score
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import KernelError
from repro.pim.config import DpuConfig
from repro.pim.dpu import Dpu
from repro.pim.kernel import (
    KernelConfig,
    WfaDpuKernel,
    max_supported_tasklets,
    per_edit_cost,
)
from repro.pim.layout import MramLayout
from repro.pim.transfer import HostTransferEngine
from repro.pim.config import HostTransferConfig

PEN = AffinePenalties(4, 6, 2)


def setup_dpu(pairs, kc: KernelConfig, tasklets: int = 4, policy: str = "mram"):
    """Build a DPU with pushed inputs plus the layout and assignments."""
    kernel = WfaDpuKernel(kc)
    dpu = Dpu(DpuConfig())
    layout = MramLayout.plan(
        num_pairs=len(pairs),
        max_pattern_len=kc.max_seq_len,
        max_text_len=kc.max_seq_len,
        max_cigar_ops=kc.max_cigar_ops,
        tasklets=tasklets,
        metadata_bytes_per_tasklet=(
            kc.metadata_peak_bytes() if policy == "mram" else 0
        ),
    )
    transfer = HostTransferEngine(HostTransferConfig())
    transfer.push_batch(dpu, layout, pairs)
    assignments = [list(range(t, len(pairs), tasklets)) for t in range(tasklets)]
    return kernel, dpu, layout, assignments


class TestKernelConfig:
    def test_max_score_bound(self):
        kc = KernelConfig(penalties=PEN, max_edits=2)
        assert kc.max_score == 2 * max(4, 8) == 16
        assert KernelConfig(penalties=EditPenalties(), max_edits=3).max_score == 3

    def test_per_edit_cost(self):
        assert per_edit_cost(PEN) == 8
        assert per_edit_cost(EditPenalties()) == 1

    def test_derived_sizes(self):
        kc = KernelConfig(penalties=PEN, max_edits=2)
        assert kc.max_wavefront_width == 2 * 16 + 3
        assert kc.max_cigar_ops == 7
        assert kc.wavefront_components == 3
        assert kc.metadata_peak_bytes() > 0

    def test_validation(self):
        with pytest.raises(KernelError):
            KernelConfig(max_read_len=0)
        with pytest.raises(KernelError):
            KernelConfig(max_edits=-1)


class TestWramPlanning:
    def test_mram_policy_admits_all_24_tasklets(self):
        kernel = WfaDpuKernel(KernelConfig(penalties=PEN, max_edits=4))
        assert max_supported_tasklets(kernel, DpuConfig(), "mram") == 24

    def test_wram_policy_caps_tasklets(self):
        """The paper's WRAM-pressure argument, quantified."""
        kernel = WfaDpuKernel(KernelConfig(penalties=PEN, max_edits=4))
        cap = max_supported_tasklets(kernel, DpuConfig(), "wram")
        assert 1 <= cap < 8

    def test_wram_cap_shrinks_with_error_budget(self):
        caps = [
            max_supported_tasklets(
                WfaDpuKernel(KernelConfig(penalties=PEN, max_edits=e)),
                DpuConfig(),
                "wram",
            )
            for e in (1, 2, 4, 8)
        ]
        assert caps == sorted(caps, reverse=True)
        assert caps[0] > caps[-1]

    def test_plan_rejects_impossible(self):
        kernel = WfaDpuKernel(KernelConfig(penalties=PEN, max_edits=40))
        with pytest.raises(KernelError, match="WRAM"):
            kernel.plan_wram(DpuConfig(), 24, "wram")

    def test_plan_rejects_bad_tasklets(self):
        kernel = WfaDpuKernel(KernelConfig())
        with pytest.raises(KernelError):
            kernel.plan_wram(DpuConfig(), 0, "mram")
        with pytest.raises(KernelError):
            kernel.plan_wram(DpuConfig(), 25, "mram")
        with pytest.raises(KernelError):
            kernel.plan_wram(DpuConfig(), 4, "cache")

    def test_plan_fits_slice(self):
        kernel = WfaDpuKernel(KernelConfig(penalties=PEN, max_edits=4))
        plan = kernel.plan_wram(DpuConfig(), 16, "mram")
        assert plan.used_bytes <= plan.slice_bytes
        assert plan.staging_buffers == 7
        assert plan.staging_buffer_bytes % 8 == 0


class TestKernelExecution:
    def test_results_match_gotoh(self):
        pairs = ReadPairGenerator(length=80, error_rate=0.04, seed=2).pairs(24)
        kc = KernelConfig(penalties=PEN, max_read_len=80, max_edits=4)
        kernel, dpu, layout, assignments = setup_dpu(pairs, kc)
        stats, results = kernel.run(
            dpu, layout, assignments, "mram", collect_results=True
        )
        assert sum(s.pairs_done for s in stats) == 24
        for index, res in results:
            pair = pairs[index]
            assert res.score == gotoh_score(pair.pattern, pair.text, PEN)
            res.cigar.validate(pair.pattern, pair.text)

    def test_results_written_to_mram(self):
        pairs = ReadPairGenerator(length=50, error_rate=0.02, seed=3).pairs(8)
        kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=1)
        kernel, dpu, layout, assignments = setup_dpu(pairs, kc, tasklets=2)
        kernel.run(dpu, layout, assignments, "mram")
        for i, pair in enumerate(pairs):
            record = dpu.mram.read(layout.result_addr(i), layout.result_record_size)
            score, cigar = layout.unpack_result(record)
            assert score == gotoh_score(pair.pattern, pair.text, PEN)
            cigar.validate(pair.pattern, pair.text)

    def test_score_only_mode(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.05, seed=4).pairs(6)
        kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=3, traceback=False)
        kernel, dpu, layout, assignments = setup_dpu(pairs, kc, tasklets=2)
        stats, results = kernel.run(
            dpu, layout, assignments, "mram", collect_results=True
        )
        for index, res in results:
            assert res.cigar is None
            pair = pairs[index]
            assert res.score == gotoh_score(pair.pattern, pair.text, PEN)

    def test_out_of_budget_pair_raises(self):
        pairs = [ReadPairGenerator(length=40, error_rate=0.0, seed=1).pair()]
        # Corrupt the pair to exceed the kernel's edit budget.
        from repro.data.generator import ReadPair

        bad = ReadPair(pattern="A" * 40, text="T" * 40)
        kc = KernelConfig(penalties=PEN, max_read_len=40, max_edits=1)
        kernel, dpu, layout, assignments = setup_dpu([bad], kc, tasklets=1)
        with pytest.raises(KernelError, match="score bound"):
            kernel.run(dpu, layout, assignments, "mram")

    def test_stats_accumulate(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.03, seed=5).pairs(12)
        kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=2)
        kernel, dpu, layout, assignments = setup_dpu(pairs, kc, tasklets=3)
        stats, _ = kernel.run(dpu, layout, assignments, "mram")
        for s in stats:
            assert s.instructions > 0
            assert s.dma_cycles > 0
            assert s.dma_bytes > 0
            assert s.cells_computed > 0

    def test_mram_policy_moves_more_dma_bytes_than_wram(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.05, seed=6).pairs(8)
        kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=3)
        k1, d1, l1, a1 = setup_dpu(pairs, kc, tasklets=2, policy="mram")
        s_mram, _ = k1.run(d1, l1, a1, "mram")
        k2, d2, l2, a2 = setup_dpu(pairs, kc, tasklets=2, policy="wram")
        s_wram, _ = k2.run(d2, l2, a2, "wram")
        assert sum(t.dma_bytes for t in s_mram) > sum(t.dma_bytes for t in s_wram)
        # functional outcome identical either way
        for dpu, layout in ((d1, l1), (d2, l2)):
            score, _ = layout.unpack_result(
                dpu.mram.read(layout.result_addr(0), layout.result_record_size)
            )
            assert score == gotoh_score(pairs[0].pattern, pairs[0].text, PEN)

    def test_edit_metric_kernel(self):
        pairs = ReadPairGenerator(length=50, error_rate=0.04, seed=7).pairs(6)
        kc = KernelConfig(
            penalties=EditPenalties(), max_read_len=50, max_edits=2
        )
        kernel, dpu, layout, assignments = setup_dpu(pairs, kc, tasklets=2)
        _, results = kernel.run(dpu, layout, assignments, "mram", collect_results=True)
        from repro.baselines.bitparallel import levenshtein_dp

        for index, res in results:
            assert res.score == levenshtein_dp(
                pairs[index].pattern, pairs[index].text
            )

    def test_adaptive_kernel_mode(self):
        """The DPU kernel with WFA-Adapt: results remain valid CIGARs."""
        pairs = ReadPairGenerator(length=80, error_rate=0.03, seed=11).pairs(8)
        kc = KernelConfig(penalties=PEN, max_read_len=80, max_edits=6, adaptive=True)
        kernel, dpu, layout, assignments = setup_dpu(pairs, kc, tasklets=2)
        _, results = kernel.run(dpu, layout, assignments, "mram", collect_results=True)
        for index, res in results:
            pair = pairs[index]
            exact = gotoh_score(pair.pattern, pair.text, PEN)
            assert res.score >= exact
            assert not res.exact
            res.cigar.validate(pair.pattern, pair.text)

    def test_chunked_staging_same_results_more_transfers(self):
        pairs = ReadPairGenerator(length=70, error_rate=0.05, seed=10).pairs(8)
        kc_whole = KernelConfig(penalties=PEN, max_read_len=70, max_edits=4)
        kc_chunk = KernelConfig(
            penalties=PEN, max_read_len=70, max_edits=4, staging_chunk_bytes=32
        )
        k1, d1, l1, a1 = setup_dpu(pairs, kc_whole, tasklets=2)
        s1, r1 = k1.run(d1, l1, a1, "mram", collect_results=True)
        kernel2 = WfaDpuKernel(kc_chunk)
        d2 = Dpu(DpuConfig())
        HostTransferEngine(HostTransferConfig()).push_batch(d2, l1, pairs)
        s2, r2 = kernel2.run(d2, l1, a1, "mram", collect_results=True)
        # identical functional results
        assert [(i, res.score) for i, res in r1] == [(i, res.score) for i, res in r2]
        # same bytes moved, but more (smaller) transfers -> more DMA cycles
        assert sum(t.dma_bytes for t in s2) == sum(t.dma_bytes for t in s1)
        assert d2.dma.transfers > d1.dma.transfers
        assert sum(t.dma_cycles for t in s2) > sum(t.dma_cycles for t in s1)

    def test_chunked_staging_shrinks_wram_plan(self):
        kc_whole = KernelConfig(penalties=PEN, max_read_len=1000, max_edits=20)
        kc_chunk = KernelConfig(
            penalties=PEN,
            max_read_len=1000,
            max_edits=20,
            staging_chunk_bytes=256,
        )
        whole_cap = max_supported_tasklets(WfaDpuKernel(kc_whole), DpuConfig(), "mram")
        chunk_cap = max_supported_tasklets(WfaDpuKernel(kc_chunk), DpuConfig(), "mram")
        assert chunk_cap > whole_cap

    def test_invalid_chunk_sizes_rejected(self):
        for bad in (4, 12, 0, 4096):
            with pytest.raises(KernelError):
                KernelConfig(penalties=PEN, staging_chunk_bytes=bad)

    def test_layout_cigar_slot_too_small_rejected(self):
        pairs = ReadPairGenerator(length=40, seed=8).pairs(2)
        kc = KernelConfig(penalties=PEN, max_read_len=40, max_edits=4)
        kernel = WfaDpuKernel(kc)
        dpu = Dpu(DpuConfig())
        layout = MramLayout.plan(
            num_pairs=2,
            max_pattern_len=48,
            max_text_len=48,
            max_cigar_ops=2,  # smaller than the kernel may emit
            tasklets=1,
            metadata_bytes_per_tasklet=kc.metadata_peak_bytes(),
        )
        with pytest.raises(KernelError, match="CIGAR"):
            kernel.run(dpu, layout, [[0, 1]], "mram")
