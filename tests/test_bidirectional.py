"""Tests for bidirectional (BiWFA-style) scoring."""

import pytest
from hypothesis import given, settings

from repro.core.aligner import WavefrontAligner
from repro.core.bidirectional import BiWfaScorer, biwfa_score
from repro.core.penalties import (
    AffinePenalties,
    EditPenalties,
    LinearPenalties,
    TwoPieceAffinePenalties,
)
from repro.core.wfa import WfaEngine
from repro.errors import AlignmentError

from conftest import affine_penalties, similar_pair

PEN = AffinePenalties(4, 6, 2)


class TestSteppingApi:
    """The engine API the bidirectional driver is built on."""

    def test_seed_then_advance_matches_run(self):
        p, t = "ACGTACGTA", "ACTTACGTA"
        ref = WfaEngine(p, t, PEN).run()
        eng = WfaEngine(p, t, PEN, memory_mode="low")
        ws = eng.seed()
        while ws is None or ws.m is None or not eng._check_end(ws.m):
            ws = eng.advance()
        assert eng.score == ref

    def test_score_attribute_tracks(self):
        eng = WfaEngine("ACGT", "ACGT", PEN)
        assert eng.score == -1
        eng.seed()
        assert eng.score == 0
        eng.advance()
        assert eng.score == 1

    def test_advance_respects_cap(self):
        eng = WfaEngine("AAAA", "TTTT", PEN, max_score=2)
        eng.seed()
        eng.advance()
        eng.advance()
        with pytest.raises(AlignmentError):
            eng.advance()


class TestKnownCases:
    def test_identical(self):
        assert biwfa_score("ACGTACGT", "ACGTACGT", PEN) == 0

    def test_single_char_sequences(self):
        assert biwfa_score("A", "A", PEN) == 0
        assert biwfa_score("A", "C", PEN) == 4

    def test_empty_handling(self):
        assert biwfa_score("", "", PEN) == 0
        assert biwfa_score("", "ACG", PEN) == PEN.gap_cost(3)
        assert biwfa_score("ACG", "", PEN) == PEN.gap_cost(3)

    def test_mismatch(self):
        assert biwfa_score("GATTACA", "GATCACA", PEN) == 4

    def test_meet_inside_a_long_gap(self):
        """The gap-open correction case: both halves meet mid-gap."""
        p = "ACGTACGTACGT"
        t = p[:6] + "T" * 20 + p[6:]
        assert biwfa_score(p, t, PEN) == PEN.gap_cost(20)

    def test_gap_at_sequence_start(self):
        p = "ACGTACGT"
        t = "TTTTTTTT" + p
        assert biwfa_score(p, t, PEN) == WavefrontAligner(PEN).score(p, t)

    def test_affine2p_rejected(self):
        with pytest.raises(AlignmentError):
            BiWfaScorer(TwoPieceAffinePenalties())


class TestAgainstStandardWfa:
    @settings(max_examples=100, deadline=None)
    @given(pair=similar_pair(max_len=40, max_edits=10))
    def test_affine_default(self, pair):
        p, t = pair
        assert biwfa_score(p, t, PEN) == WavefrontAligner(PEN).score(p, t)

    @settings(max_examples=50, deadline=None)
    @given(pair=similar_pair(max_len=25, max_edits=8), pen=affine_penalties)
    def test_affine_random_penalties(self, pair, pen):
        p, t = pair
        assert biwfa_score(p, t, pen) == WavefrontAligner(pen).score(p, t)

    @settings(max_examples=50, deadline=None)
    @given(pair=similar_pair(max_len=35, max_edits=8))
    def test_edit(self, pair):
        p, t = pair
        pen = EditPenalties()
        assert biwfa_score(p, t, pen) == WavefrontAligner(pen).score(p, t)

    @settings(max_examples=50, deadline=None)
    @given(pair=similar_pair(max_len=35, max_edits=8))
    def test_linear(self, pair):
        p, t = pair
        pen = LinearPenalties(4, 2)
        assert biwfa_score(p, t, pen) == WavefrontAligner(pen).score(p, t)


class TestMemoryAdvantage:
    def test_peak_memory_below_full_traceback_engine(self):
        """The point of BiWFA: O(s) live metadata instead of O(s^2)."""
        import random

        rng = random.Random(17)
        p = "".join(rng.choice("ACGT") for _ in range(300))
        t = "".join(rng.choice("ACGT") for _ in range(300))

        full = WfaEngine(p, t, PEN, memory_mode="full")
        full.run()

        fwd = WfaEngine(p, t, PEN, memory_mode="low")
        scorer = BiWfaScorer(PEN)
        score = scorer.score(p, t)
        assert score == full.final_score

        # A single low-memory engine's peak is already far below the full
        # engine's total; bidirectional peak is two such windows.
        low = WfaEngine(p, t, PEN, memory_mode="low")
        low.run()
        assert low.counters.peak_live_bytes * 5 < full.counters.peak_live_bytes
