"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.seqio import read_seq


@pytest.fixture
def workload(tmp_path):
    path = tmp_path / "reads.seq"
    rc = main(
        [
            "generate",
            "--pairs",
            "12",
            "--length",
            "60",
            "--error-rate",
            "0.04",
            "--seed",
            "3",
            "-o",
            str(path),
        ]
    )
    assert rc == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_metric_choices(self):
        args = build_parser().parse_args(["align", "-i", "x", "--metric", "affine2p"])
        assert args.metric == "affine2p"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["align", "-i", "x", "--metric", "hamming"])


class TestGenerate:
    def test_writes_seq(self, workload):
        pairs = read_seq(workload)
        assert len(pairs) == 12
        assert all(len(p.pattern) == 60 for p in pairs)

    def test_writes_fasta(self, tmp_path, capsys):
        path = tmp_path / "reads.fa"
        rc = main(
            ["generate", "--pairs", "3", "--length", "20", "--format", "fasta",
             "-o", str(path)]
        )
        assert rc == 0
        assert path.read_text().startswith(">pair0/1")
        assert "wrote 3 pairs" in capsys.readouterr().out

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.seq"
        b = tmp_path / "b.seq"
        for p in (a, b):
            main(["generate", "--pairs", "5", "--seed", "9", "-o", str(p)])
        assert a.read_text() == b.read_text()


class TestAlign:
    def test_stdout_tsv(self, workload, capsys):
        rc = main(["align", "-i", str(workload)])
        assert rc == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0] == "pair\tscore\tcigar"
        assert len(lines) == 13
        idx, score, cigar = lines[1].split("\t")
        assert idx == "0" and int(score) >= 0 and cigar != "."

    def test_score_only(self, workload, capsys):
        rc = main(["align", "-i", str(workload), "--score-only"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(line.split("\t")[2] == "." for line in lines[1:])

    def test_output_file(self, workload, tmp_path, capsys):
        out = tmp_path / "result.tsv"
        rc = main(["align", "-i", str(workload), "-o", str(out)])
        assert rc == 0
        assert out.read_text().startswith("pair\tscore")
        assert "aligned 12 pairs" in capsys.readouterr().out

    def test_edit_metric_scores(self, workload, capsys):
        rc = main(["align", "-i", str(workload), "--metric", "edit"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        # edit budget is 0.04 * 60 ~ 2 edits per pair
        assert all(int(line.split("\t")[1]) <= 3 for line in lines)

    def test_linear_space_matches_default(self, workload, capsys):
        rc = main(["align", "-i", str(workload)])
        assert rc == 0
        default_scores = [
            line.split("\t")[1]
            for line in capsys.readouterr().out.strip().splitlines()[1:]
        ]
        rc = main(["align", "-i", str(workload), "--linear-space"])
        assert rc == 0
        linear_scores = [
            line.split("\t")[1]
            for line in capsys.readouterr().out.strip().splitlines()[1:]
        ]
        assert linear_scores == default_scores

    def test_linear_space_rejects_affine2p(self, workload, capsys):
        rc = main(
            ["align", "-i", str(workload), "--linear-space", "--metric", "affine2p"]
        )
        assert rc == 1
        assert "linear-space" in capsys.readouterr().err

    def test_missing_input_is_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.seq"
        with pytest.raises(FileNotFoundError):
            main(["align", "-i", str(missing)])


class TestPimAlign:
    def test_runs_and_reports(self, workload, capsys):
        rc = main(
            ["pim-align", "-i", str(workload), "--dpus", "4", "--tasklets", "4",
             "--max-edits", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated PIM run" in out
        assert "kernel" in out
        assert "throughput" in out

    def test_wram_policy(self, workload, capsys):
        rc = main(
            ["pim-align", "-i", str(workload), "--dpus", "2", "--tasklets", "2",
             "--policy", "wram", "--max-edits", "3"]
        )
        assert rc == 0
        assert "wram" in capsys.readouterr().out

    def test_reproerror_becomes_exit_code(self, workload, capsys):
        # 24 tasklets under the wram policy cannot be admitted -> clean error
        rc = main(
            ["pim-align", "-i", str(workload), "--dpus", "2", "--tasklets", "24",
             "--policy", "wram", "--max-edits", "6"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "empty.seq"
        empty.write_text("")
        rc = main(["pim-align", "-i", str(empty)])
        assert rc == 1


class TestPimAlignTelemetry:
    def _run(self, workload, tmp_path, *extra):
        return main(
            ["pim-align", "-i", str(workload), "--dpus", "4", "--tasklets", "2",
             "--max-edits", "3", *extra]
        )

    def test_trace_out_is_valid_chrome_trace(self, workload, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        trace = tmp_path / "trace.json"
        rc = self._run(workload, tmp_path, "--trace-out", str(trace))
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) > 0
        # per-DPU processes and tasklet lanes made it into the export
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert pids == {0, 1, 2, 3, 4}  # host + 4 DPUs
        out = capsys.readouterr().out
        assert "wrote Chrome trace" in out
        assert "telemetry reconciled" in out

    def test_metrics_out_json(self, workload, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        rc = self._run(workload, tmp_path, "--metrics-out", str(path))
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.obs/v1"
        assert doc["runs"][0]["num_pairs"] == 12
        assert "wrote metrics" in capsys.readouterr().out

    def test_metrics_out_prometheus(self, workload, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        rc = self._run(workload, tmp_path, "--metrics-out", str(path))
        assert rc == 0
        text = path.read_text()
        assert "# TYPE pim_runs_total counter" in text
        assert 'pim_pairs_total{kind="align"} 12' in text

    def test_metrics_out_jsonl_manifest(self, workload, tmp_path, capsys):
        import json

        path = tmp_path / "runs.jsonl"
        rc = self._run(workload, tmp_path, "--metrics-out", str(path))
        assert rc == 0
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "run"
        assert lines[-1]["type"] == "summary"

    def test_both_flags_with_workers(self, workload, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = self._run(
            workload, tmp_path, "--workers", "2",
            "--metrics-out", str(metrics), "--trace-out", str(trace),
        )
        assert rc == 0
        assert validate_chrome_trace(json.loads(trace.read_text())) > 0
        assert json.loads(metrics.read_text())["schema"] == "repro.obs/v1"

    def test_no_flags_no_telemetry_output(self, workload, tmp_path, capsys):
        rc = self._run(workload, tmp_path)
        assert rc == 0
        assert "telemetry" not in capsys.readouterr().out


class TestMap:
    @pytest.fixture
    def mapping_files(self, tmp_path):
        from repro.data.simulator import ReferenceSampler
        from repro.data.seqio import write_fasta

        sampler = ReferenceSampler(
            seed=13, reference_length=3000, read_length=60, error_rate=0.02
        )
        ref = tmp_path / "ref.fa"
        write_fasta(ref, [("contig1", sampler.reference)])
        reads = sampler.reads(6)
        reads_fa = tmp_path / "reads.fa"
        write_fasta(
            reads_fa,
            [(f"read{i}", r.sequence) for i, r in enumerate(reads)],
        )
        return ref, reads_fa, sampler, reads

    def test_maps_reads_to_paf(self, mapping_files, tmp_path, capsys):
        from repro.data.paf import read_paf

        ref, reads_fa, sampler, reads = mapping_files
        out = tmp_path / "out.paf"
        rc = main(
            ["map", "--reference", str(ref), "--reads", str(reads_fa),
             "--both-strands", "-o", str(out)]
        )
        assert rc == 0
        records = read_paf(out)
        assert len(records) == 6
        hits = 0
        for rec, read in zip(records, reads):
            assert rec.target_name == "contig1"
            if abs(rec.target_start - read.position) <= sampler.edit_budget + 1:
                hits += 1
            assert (rec.strand == "-") == read.reverse
        assert hits == 6

    def test_multi_record_reference_rejected(self, mapping_files, tmp_path, capsys):
        from repro.data.seqio import write_fasta

        _ref, reads_fa, _sampler, _reads = mapping_files
        bad_ref = tmp_path / "multi.fa"
        write_fasta(bad_ref, [("a", "ACGT"), ("b", "ACGT")])
        rc = main(
            ["map", "--reference", str(bad_ref), "--reads", str(reads_fa),
             "-o", str(tmp_path / "x.paf")]
        )
        assert rc == 1
        assert "exactly one" in capsys.readouterr().err

    def test_empty_reads_rejected(self, mapping_files, tmp_path, capsys):
        ref, _reads, _sampler, _r = mapping_files
        empty = tmp_path / "none.fa"
        empty.write_text("")
        rc = main(
            ["map", "--reference", str(ref), "--reads", str(empty),
             "-o", str(tmp_path / "x.paf")]
        )
        assert rc == 1


class TestStats:
    def test_stats_report(self, workload, capsys):
        rc = main(["stats", "-i", str(workload)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scores" in out and "identities" in out

    def test_stats_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "none.seq"
        empty.write_text("")
        rc = main(["stats", "-i", str(empty)])
        assert rc == 1


class TestSweep:
    def test_allocator_sweep_runs(self, capsys):
        rc = main(["sweep", "allocator"])
        assert rc == 0
        assert "allocator policy ablation" in capsys.readouterr().out
