"""End-to-end chaos drill (mirrored by the Makefile's ``chaos`` target).

One seeded scenario exercises every resilience layer at once:

* a persistent ``DpuDeath`` plus a first-attempt ``TaskletStall`` under
  the circuit breaker — the dead DPU is quarantined, the stall is
  caught by the modeled watchdog;
* a mid-run crash (journal truncated at a record boundary) resumed with
  ``pim-align --resume`` — the rebuilt journal must be byte-identical
  to the uninterrupted one and pass schema validation;
* the same fault plan through ``repro loadgen`` with CPU fallback — the
  ``repro.serve.load/v1`` report must stay schema-valid while degraded.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.pim.journal import JOURNAL_SCHEMA, RunJournal
from repro.serve import validate_load_report

FAST = ["--dpus", "4", "--tasklets", "4"]


@pytest.fixture()
def reads(tmp_path):
    path = tmp_path / "reads.seq"
    code = main(
        ["generate", "--pairs", "96", "--length", "48",
         "--error-rate", "0.03", "--seed", "13", "-o", str(path)]
    )
    assert code == 0
    return path


class TestChaosDrill:
    def test_crash_resume_under_faults_and_breaker(self, tmp_path, reads, capsys):
        journal = tmp_path / "run.jsonl"
        align = [
            "pim-align", "-i", str(reads), "--pairs-per-round", "24",
            "--kill-dpu", "1", "--stall-dpu", "2", "--breaker",
            "--journal", str(journal),
        ] + FAST
        assert main(align) == 0
        full = journal.read_text()
        assert len(full.splitlines()) == 5  # header + 4 rounds
        out = capsys.readouterr()
        assert "quarantined" in out.err.lower()

        # crash after round 2, resume, and the journal heals in place
        crashed = tmp_path / "crashed.jsonl"
        crashed.write_text(
            "\n".join(full.splitlines()[:3]) + "\n"
        )
        resume = [a if a != str(journal) else str(crashed) for a in align]
        assert main(resume + ["--resume"]) == 0
        assert crashed.read_text() == full
        assert "4 (2)" in capsys.readouterr().out  # 4 rounds, 2 replayed

        loaded = RunJournal.load(crashed)
        assert loaded.header["schema"] == JOURNAL_SCHEMA
        assert sorted(loaded.rounds()) == [0, 1, 2, 3]

    def test_degraded_loadgen_report_validates(self, tmp_path):
        report = tmp_path / "load.jsonl"
        metrics = tmp_path / "serve.prom"
        code = main(
            ["loadgen", "--requests", "120", "--rate", "8000",
             "--length", "10", "--seed", "13",
             "--kill-dpu", "1", "--stall-dpu", "2", "--breaker",
             "--fallback-threshold", "0.9",
             "--report", str(report), "--metrics-out", str(metrics)] + FAST
        )
        assert code == 0
        summary = validate_load_report(report)
        assert summary["requests"] == 120
        # the breaker quarantined the dead DPU and fallback engaged
        text = metrics.read_text()
        assert "pim_breaker_transitions_total" in text
        assert "serve_fallback_pairs_total" in text
        # every record still carries a backend attribution
        records = [
            json.loads(line) for line in report.read_text().splitlines()
        ]
        body = [r for r in records if r.get("record") == "request"]
        assert body and all(r["status"] in ("ok", "rejected") for r in body)
