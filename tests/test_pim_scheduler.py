"""Tests for the multi-round batch scheduler."""

import pytest

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchSchedule, BatchScheduler, ScheduledRun
from repro.pim.system import PimRunResult, PimSystem

PEN = AffinePenalties(4, 6, 2)


def small_system() -> PimSystem:
    cfg = PimSystemConfig(num_dpus=4, num_ranks=1, tasklets=2, num_simulated_dpus=4)
    kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=2)
    return PimSystem(cfg, kc)


class TestSchedule:
    def test_round_sizes_cover_everything(self):
        s = BatchSchedule(total_pairs=100, pairs_per_round=30)
        assert s.rounds == 4
        assert s.round_sizes() == [30, 30, 30, 10]
        assert sum(s.round_sizes()) == 100

    def test_single_round(self):
        s = BatchSchedule(total_pairs=10, pairs_per_round=100)
        assert s.rounds == 1
        assert s.round_sizes() == [10]

    def test_empty_workload_has_no_rounds(self):
        """Regression: ``round_sizes()`` used to fabricate a phantom
        round of ``pairs_per_round`` pairs for ``total_pairs == 0``."""
        s = BatchSchedule(total_pairs=0, pairs_per_round=30)
        assert s.rounds == 0
        assert s.round_sizes() == []
        assert sum(s.round_sizes()) == 0


class TestCapacity:
    def test_capacity_scales_with_dpus(self):
        sched = BatchScheduler(small_system())
        cap = sched.max_pairs_per_round()
        assert cap > 100_000  # 64 MB banks hold a lot of 50bp records
        assert cap % 4 == 0  # whole per-DPU batches

    def test_budget_fraction_validated(self):
        sched = BatchScheduler(small_system())
        with pytest.raises(ConfigError):
            sched.max_pairs_per_round(0)
        with pytest.raises(ConfigError):
            sched.max_pairs_per_round(1.5)

    def test_plan_validation(self):
        sched = BatchScheduler(small_system())
        with pytest.raises(ConfigError):
            sched.plan(-1)
        with pytest.raises(ConfigError):
            sched.plan(10, pairs_per_round=0)
        with pytest.raises(ConfigError):
            sched.plan(10, pairs_per_round=10**12)

    def test_plan_accepts_empty_workload(self):
        sched = BatchScheduler(small_system())
        schedule = sched.plan(0)
        assert schedule.rounds == 0
        assert schedule.round_sizes() == []


class TestHeaderConstant:
    def test_capacity_uses_layout_header_constant(self, monkeypatch):
        """Regression: the fixed-overhead term must track
        ``layout.HEADER_BYTES``, not a hardcoded 64."""
        import repro.pim.scheduler as scheduler_mod

        sched = BatchScheduler(small_system())
        default_cap = sched.max_pairs_per_round()
        monkeypatch.setattr(scheduler_mod, "HEADER_BYTES", 8 * 1024 * 1024)
        assert sched.max_pairs_per_round() < default_cap


def _round(kernel, t_in, t_out, launch) -> PimRunResult:
    return PimRunResult(
        num_pairs=1,
        pairs_simulated=1,
        tasklets=1,
        metadata_policy="mram",
        kernel_seconds=kernel,
        transfer_in_seconds=t_in,
        transfer_out_seconds=t_out,
        launch_seconds=launch,
        bytes_in=0,
        bytes_out=0,
    )


class TestOverlappedLaunchAccounting:
    """Regression for the overlapped timing model: inner-round launches
    pipeline behind max(kernel, transfer); only the first is exposed."""

    ROUNDS = [
        _round(1.0, 0.2, 0.1, 0.01),
        _round(2.0, 0.3, 0.2, 0.01),
        _round(0.5, 0.1, 0.4, 0.01),
    ]

    def test_serialized_total_pinned(self):
        run = ScheduledRun(
            schedule=BatchSchedule(total_pairs=3, pairs_per_round=1),
            per_round=list(self.ROUNDS),
            overlapped=False,
        )
        # kernels 3.5 + transfers 1.3 + all three launches 0.03
        assert run.total_seconds == pytest.approx(3.5 + 1.3 + 0.03)

    def test_overlapped_total_pinned(self):
        run = ScheduledRun(
            schedule=BatchSchedule(total_pairs=3, pairs_per_round=1),
            per_round=list(self.ROUNDS),
            overlapped=True,
        )
        # first_in 0.2 + exposed launch 0.01
        #   + max(1.0, 0.3) + max(2.0, 0.5) + max(0.5, 0.5) = 3.5
        #   + last_out 0.4
        assert run.total_seconds == pytest.approx(0.2 + 0.01 + 3.5 + 0.4)

    def test_only_one_launch_charged(self):
        serial = ScheduledRun(
            schedule=BatchSchedule(total_pairs=3, pairs_per_round=1),
            per_round=list(self.ROUNDS),
            overlapped=False,
        )
        overlap = ScheduledRun(
            schedule=BatchSchedule(total_pairs=3, pairs_per_round=1),
            per_round=list(self.ROUNDS),
            overlapped=True,
        )
        # zeroing the launch overhead must shrink the serialized total by
        # 3 launches but the overlapped total by only the exposed one
        free = [_round(r.kernel_seconds, r.transfer_in_seconds,
                       r.transfer_out_seconds, 0.0) for r in self.ROUNDS]
        serial_free = ScheduledRun(
            schedule=serial.schedule, per_round=free, overlapped=False
        )
        overlap_free = ScheduledRun(
            schedule=serial.schedule, per_round=free, overlapped=True
        )
        assert serial.total_seconds - serial_free.total_seconds == pytest.approx(0.03)
        assert overlap.total_seconds - overlap_free.total_seconds == pytest.approx(0.01)


class TestExecution:
    @pytest.fixture
    def pairs(self):
        return ReadPairGenerator(length=50, error_rate=0.02, seed=8).pairs(60)

    def test_multi_round_aligns_everything(self, pairs):
        sched = BatchScheduler(small_system())
        run = sched.run(pairs, pairs_per_round=25, collect_results=True)
        assert run.schedule.rounds == 3
        assert sum(len(r.results) for r in run.per_round) == 60
        assert sum(r.pairs_simulated for r in run.per_round) == 60

    def test_serialized_time_is_sum_of_rounds(self, pairs):
        sched = BatchScheduler(small_system())
        run = sched.run(pairs, pairs_per_round=20)
        expect = sum(r.total_seconds for r in run.per_round)
        assert run.total_seconds == pytest.approx(expect)

    def test_overlap_beats_serialized(self, pairs):
        serial = BatchScheduler(small_system(), overlapped=False).run(
            pairs, pairs_per_round=20
        )
        overlap = BatchScheduler(small_system(), overlapped=True).run(
            pairs, pairs_per_round=20
        )
        assert overlap.total_seconds < serial.total_seconds
        assert overlap.kernel_seconds == pytest.approx(serial.kernel_seconds)
        assert overlap.throughput() > serial.throughput()

    def test_single_round_equivalent_to_direct_align(self, pairs):
        system = small_system()
        direct = system.align(pairs)
        run = BatchScheduler(system).run(pairs)
        assert run.schedule.rounds == 1
        assert run.total_seconds == pytest.approx(direct.total_seconds)

    def test_run_empty_workload_end_to_end(self):
        """Regression companion to the ``round_sizes()`` fix: an empty
        run performs zero device work and aggregates cleanly."""
        sched = BatchScheduler(small_system())
        run = sched.run([], collect_results=True)
        assert run.schedule.total_pairs == 0
        assert run.per_round == []
        assert run.total_seconds == 0.0
        assert run.throughput() == 0.0
        assert run.recovery is None

    def test_results_partition_by_round(self, pairs):
        sched = BatchScheduler(small_system())
        run = sched.run(pairs, pairs_per_round=25, collect_results=True)
        # scores across rounds match a flat alignment
        flat = small_system().align(pairs).results
        flat_scores = [s for _i, s, _c in sorted(flat)]
        chunked_scores = []
        start = 0
        for r, size in zip(run.per_round, run.schedule.round_sizes()):
            chunked_scores.extend(s for _i, s, _c in sorted(r.results))
            start += size
        assert chunked_scores == flat_scores
