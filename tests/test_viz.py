"""Tests for the text visualizations."""

import pytest

from repro.core.aligner import WavefrontAligner
from repro.core.cigar import Cigar
from repro.core.penalties import AffinePenalties
from repro.core.viz import (
    render_alignment_matrix,
    render_score_histogram,
    render_wavefront_progress,
)
from repro.core.wfa import WfaEngine
from repro.errors import AlignmentError

PEN = AffinePenalties(4, 6, 2)


class TestWavefrontProgress:
    def test_renders_all_scores(self):
        eng = WfaEngine("ACGTACGT", "ACTTACGT", PEN)
        eng.run()
        out = render_wavefront_progress(eng)
        assert "final score 4" in out
        assert "s=0" in out and "s=4" in out
        assert "*" in out

    def test_requires_finished_engine(self):
        eng = WfaEngine("AC", "AC", PEN)
        with pytest.raises(AlignmentError):
            render_wavefront_progress(eng)

    def test_wider_wavefronts_for_dissimilar_pairs(self):
        import random

        rng = random.Random(3)
        p = "".join(rng.choice("ACGT") for _ in range(30))
        t = "".join(rng.choice("ACGT") for _ in range(30))
        eng = WfaEngine(p, t, PEN)
        eng.run()
        out = render_wavefront_progress(eng)
        assert out.count("\n") > 5  # many score lines


class TestAlignmentMatrix:
    def test_diagonal_path(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACGT")
        out = render_alignment_matrix("ACGT", "ACGT", r.cigar)
        assert out.count("\\") == 4
        assert "o" in out

    def test_mismatch_marked(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACTT")
        out = render_alignment_matrix("ACGT", "ACTT", r.cigar)
        assert "x" in out

    def test_gaps_marked(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACGGT")
        out = render_alignment_matrix("ACGT", "ACGGT", r.cigar)
        assert ">" in out
        r2 = WavefrontAligner(PEN).align("ACGGT", "ACGT")
        out2 = render_alignment_matrix("ACGGT", "ACGT", r2.cigar)
        assert "v" in out2

    def test_size_limit(self):
        p = "A" * 50
        with pytest.raises(AlignmentError, match="limited"):
            render_alignment_matrix(p, p, Cigar.from_string("50M"))

    def test_invalid_cigar_rejected(self):
        with pytest.raises(Exception):
            render_alignment_matrix("ACGT", "ACGT", Cigar.from_string("3M"))

    def test_empty_text(self):
        r = WavefrontAligner(PEN).align("AC", "")
        out = render_alignment_matrix("AC", "", r.cigar)
        assert "empty text" in out


class TestHistogram:
    def test_bars_scale(self):
        out = render_score_histogram({0: 10, 4: 5, 8: 1})
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0].count("#") > lines[1].count("#") > 0

    def test_empty_rejected(self):
        with pytest.raises(AlignmentError):
            render_score_histogram({})

    def test_integrates_with_stats(self):
        from repro.analysis import summarize_results
        from repro.data.generator import ReadPairGenerator

        pairs = ReadPairGenerator(length=40, error_rate=0.05, seed=8).pairs(15)
        aligner = WavefrontAligner(PEN)
        stats = summarize_results(
            [aligner.align(p.pattern, p.text) for p in pairs]
        )
        out = render_score_histogram(stats.score_histogram)
        assert "score" in out
