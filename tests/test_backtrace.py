"""Traceback tests: CIGAR validity, score consistency, error paths."""

import pytest
from hypothesis import given, settings

from repro.core.aligner import WavefrontAligner
from repro.core.backtrace import backtrace
from repro.core.penalties import AffinePenalties, EditPenalties, LinearPenalties
from repro.core.wfa import WfaEngine
from repro.errors import AlignmentError

from conftest import any_penalties, similar_pair

PEN = AffinePenalties(4, 6, 2)


class TestBacktraceUnits:
    def test_identical_sequences_all_match(self):
        r = WavefrontAligner(PEN).align("ACGTACGT", "ACGTACGT")
        assert str(r.cigar) == "8M"

    def test_single_mismatch(self):
        r = WavefrontAligner(PEN).align("GATTACA", "GATCACA")
        assert str(r.cigar) == "3M1X3M"

    def test_insertion_and_deletion(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACGGT")
        assert r.cigar.counts()["I"] == 1
        r2 = WavefrontAligner(PEN).align("ACGGT", "ACGT")
        assert r2.cigar.counts()["D"] == 1

    def test_empty_vs_empty(self):
        r = WavefrontAligner(PEN).align("", "")
        assert r.cigar.columns() == 0

    def test_empty_pattern(self):
        r = WavefrontAligner(PEN).align("", "ACG")
        assert str(r.cigar) == "3I"

    def test_empty_text(self):
        r = WavefrontAligner(PEN).align("ACG", "")
        assert str(r.cigar) == "3D"

    def test_requires_run_first(self):
        eng = WfaEngine("A", "A", PEN)
        with pytest.raises(AlignmentError):
            backtrace(eng)

    def test_requires_full_memory_mode(self):
        eng = WfaEngine("ACGT", "ACTT", PEN, memory_mode="low")
        eng.run()
        with pytest.raises(AlignmentError):
            backtrace(eng)

    def test_gap_run_is_contiguous(self):
        # A 3-long insertion should come out as one run (one gap opening),
        # because WFA found a score-16 path, not three score-8 openings.
        r = WavefrontAligner(PEN).align("AACC", "AATTTCC")
        assert r.score == PEN.gap_cost(3)
        assert r.cigar.counts()["I"] == 3
        runs = [op for op in r.cigar if op.op == "I"]
        assert len(runs) == 1


class TestBacktraceProperties:
    @settings(max_examples=120, deadline=None)
    @given(pair=similar_pair())
    def test_cigar_validates_and_rescosres_affine(self, pair):
        p, t = pair
        r = WavefrontAligner(PEN).align(p, t)
        r.cigar.validate(p, t)
        assert r.cigar.score(PEN) == r.score

    @settings(max_examples=80, deadline=None)
    @given(pair=similar_pair(max_len=30, max_edits=8), pen=any_penalties)
    def test_cigar_validates_all_metrics(self, pair, pen):
        p, t = pair
        r = WavefrontAligner(pen).align(p, t)
        r.cigar.validate(p, t)
        assert r.cigar.score(pen) == r.score

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair())
    def test_cigar_consumes_exact_lengths(self, pair):
        p, t = pair
        r = WavefrontAligner(EditPenalties()).align(p, t)
        assert r.cigar.pattern_length() == len(p)
        assert r.cigar.text_length() == len(t)

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair())
    def test_linear_cigar_consistent(self, pair):
        p, t = pair
        pen = LinearPenalties(mismatch=3, indel=2)
        r = WavefrontAligner(pen).align(p, t)
        r.cigar.validate(p, t)
        assert r.cigar.score(pen) == r.score
