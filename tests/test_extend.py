"""Unit + property tests for greedy extension."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.extend import (
    extend_diagonal,
    extend_diagonal_blocked,
    extend_wavefront,
)
from repro.core.wavefront import OFFSET_NULL, Wavefront

DNA = "ACGT"


class TestExtendDiagonal:
    def test_full_match_on_main_diagonal(self):
        off, comps = extend_diagonal("ACGT", "ACGT", 0, 0)
        assert off == 4
        assert comps == 4  # no mismatching probe at the boundary

    def test_stops_at_mismatch(self):
        off, comps = extend_diagonal("ACGT", "ACTT", 0, 0)
        assert off == 2
        assert comps == 3  # 2 matches + the failing probe

    def test_off_diagonal(self):
        # k=1: text offset h, pattern index v = h - 1
        off, _ = extend_diagonal("CGT", "ACGT", 1, 1)
        assert off == 4

    def test_starts_midway(self):
        off, comps = extend_diagonal("AAAA", "AAAA", 0, 2)
        assert off == 4
        assert comps == 2

    def test_empty_sequences(self):
        assert extend_diagonal("", "", 0, 0) == (0, 0)
        assert extend_diagonal("A", "", 0, 0) == (0, 0)

    def test_boundary_clamps(self):
        # offset already at text end: nothing to do
        off, comps = extend_diagonal("AAAA", "AA", 0, 2)
        assert off == 2
        assert comps == 0


class TestBlockedEquivalence:
    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(0, 80),
        k=st.integers(-5, 5),
    )
    def test_blocked_matches_scalar(self, seed, n, k):
        import random

        rng = random.Random(seed)
        pattern = "".join(rng.choice(DNA) for _ in range(n))
        text = "".join(rng.choice(DNA) for _ in range(rng.randint(0, 80)))
        # pick a legal starting offset on diagonal k
        lo = max(0, k)
        hi = min(len(text), len(pattern) + k)
        if hi < lo:
            return
        offset = rng.randint(lo, hi)
        scalar_off, _ = extend_diagonal(pattern, text, k, offset)
        blocked_off, _ = extend_diagonal_blocked(
            pattern.encode(), text.encode(), k, offset
        )
        assert scalar_off == blocked_off

    def test_blocked_counts_probes_not_chars(self):
        p = b"A" * 32
        _, probes = extend_diagonal_blocked(p, p, 0, 0)
        assert probes == 4  # four 8-byte blocks

    def test_differing_block_costs_two_probes(self):
        # One 8-byte block with a difference inside: the word compare
        # (1 probe) plus the XOR/ctz locate (1 probe) — the block's bytes
        # are never re-probed one by one.
        assert extend_diagonal_blocked(b"AAAATTTT", b"AAACTTTT", 0, 0) == (3, 2)
        # The scalar loop probes character by character instead.
        assert extend_diagonal("AAAATTTT", "AAACTTTT", 0, 0) == (3, 4)

    def test_differing_block_after_matching_block(self):
        p = b"A" * 8 + b"AAATXXXX"
        t = b"A" * 8 + b"AAACXXXX"
        # Block 1 matches (1 probe); block 2 differs (2 probes).
        assert extend_diagonal_blocked(p, t, 0, 0) == (11, 3)

    def test_byte_tail_probes_per_byte(self):
        # Fewer than `block` bytes remain: per-byte probes, including the
        # final mismatching one, exactly like the scalar loop.
        assert extend_diagonal_blocked(b"AAAAT", b"AAAAC", 0, 0) == (4, 5)
        # Tail after a matching block: 1 block probe + 3 byte probes.
        p = b"A" * 8 + b"AAT"
        t = b"A" * 8 + b"AAC"
        assert extend_diagonal_blocked(p, t, 0, 0) == (10, 4)

    def test_blocked_probe_count_matches_scalar_on_tail_only_input(self):
        # Inputs shorter than a block never enter the block loop, so the
        # two variants must agree on probes, not just offsets.
        off_s, comps_s = extend_diagonal("ACGTAC", "ACGTAC", 0, 0)
        off_b, probes_b = extend_diagonal_blocked(b"ACGTAC", b"ACGTAC", 0, 0)
        assert (off_s, comps_s) == (off_b, probes_b) == (6, 6)


class TestExtendWavefront:
    def test_extends_all_reached_diagonals(self):
        # pattern CGT: diagonal 0 stalls immediately (C vs A), diagonal 1
        # (v = h - 1) matches CGT against text[1:] fully.
        wf = Wavefront(-1, 1)
        wf[0] = 0
        wf[1] = 1
        comps = extend_wavefront("CGT", "ACGT", wf)
        assert wf[0] == 0
        assert wf[1] == 4
        assert wf[-1] == OFFSET_NULL
        assert comps > 0

    def test_null_offsets_untouched(self):
        wf = Wavefront(0, 0)
        extend_wavefront("AAA", "AAA", wf)
        assert wf[0] == OFFSET_NULL

    def test_adjusted_null_sentinel_is_skipped(self):
        # Regression: recurrence arithmetic can nudge a NULL offset to
        # OFFSET_NULL + 1.  `Wavefront.reached` and `extend_wavefront`
        # share NULL_THRESHOLD, so such a diagonal must be skipped — not
        # extended as if the huge negative value were a real offset.
        wf = Wavefront(0, 1)
        wf[0] = OFFSET_NULL + 1
        wf[1] = 1
        assert not wf.reached(0)
        comps = extend_wavefront("AAAA", "AAAAA", wf)
        assert wf[0] == OFFSET_NULL + 1  # untouched
        assert wf[1] == 5  # diagonal 1 extended normally
        assert comps == 4  # only diagonal 1's comparisons were charged
