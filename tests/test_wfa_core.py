"""Core WFA engine tests: known cases, invariants, and the Gotoh oracle."""

import pytest
from hypothesis import given, settings

from repro.baselines.bitparallel import levenshtein_dp
from repro.baselines.gotoh import gotoh_score
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties, LinearPenalties
from repro.core.wfa import WfaEngine
from repro.errors import AlignmentError

from conftest import affine_penalties, similar_pair

PEN = AffinePenalties(4, 6, 2)


class TestKnownScores:
    def test_identical(self):
        assert WavefrontAligner(PEN).score("ACGTACGT", "ACGTACGT") == 0

    def test_empty_both(self):
        assert WavefrontAligner(PEN).score("", "") == 0

    def test_empty_pattern_is_pure_insertion(self):
        # gap of length 4: 6 + 4*2 = 14
        assert WavefrontAligner(PEN).score("", "ACGT") == 14

    def test_empty_text_is_pure_deletion(self):
        assert WavefrontAligner(PEN).score("ACG", "") == 12

    def test_single_mismatch(self):
        assert WavefrontAligner(PEN).score("GATTACA", "GATCACA") == 4

    def test_single_insertion(self):
        assert WavefrontAligner(PEN).score("GATTACA", "GATTTACA") == 8

    def test_mismatch_cheaper_than_double_gap(self):
        # A vs C: mismatch 4 < del+ins 16
        assert WavefrontAligner(PEN).score("A", "C") == 4

    def test_long_gap_amortizes_opening(self):
        # 5-gap: 6 + 5*2 = 16, vs 5 separate nothing
        assert WavefrontAligner(PEN).score("AAAAA", "AAAAATTTTT") == 16

    def test_edit_metric(self):
        al = WavefrontAligner(EditPenalties())
        assert al.score("KITTEN".replace("K", "A"), "AITTEN") == 0
        assert al.score("ACGT", "AGT") == 1
        assert al.score("ACGT", "TGCA") == levenshtein_dp("ACGT", "TGCA")

    def test_linear_metric(self):
        al = WavefrontAligner(LinearPenalties(mismatch=4, indel=2))
        assert al.score("ACGT", "AGT") == 2
        assert al.score("ACGT", "ACTT") == 4


class TestEngineBehaviour:
    def test_final_score_recorded(self):
        eng = WfaEngine("ACGT", "ACTT", PEN)
        s = eng.run()
        assert eng.final_score == s == 4

    def test_counters_populate(self):
        eng = WfaEngine("ACGTACGT", "ACTTACGT", PEN)
        eng.run()
        c = eng.counters
        assert c.cells_computed > 0
        assert c.extend_steps >= 8
        assert c.score_iterations >= 1
        assert c.wavefronts_allocated == len(c.wavefront_log)
        assert c.offsets_allocated >= c.wavefronts_allocated

    def test_score_zero_fast_path_allocates_one_wavefront(self):
        eng = WfaEngine("AAAA", "AAAA", PEN)
        assert eng.run() == 0
        assert eng.counters.wavefronts_allocated == 1

    def test_low_memory_mode_expires_wavefronts(self):
        eng_full = WfaEngine("ACGTAC" * 6, "AGGTAC" * 6, PEN, memory_mode="full")
        eng_low = WfaEngine("ACGTAC" * 6, "AGGTAC" * 6, PEN, memory_mode="low")
        s_full = eng_full.run()
        s_low = eng_low.run()
        assert s_full == s_low
        assert len(eng_low.wavefronts) < len(eng_full.wavefronts)
        assert eng_low.counters.peak_live_bytes <= eng_full.counters.peak_live_bytes

    def test_max_score_cap_raises(self):
        with pytest.raises(AlignmentError):
            WfaEngine("AAAA", "TTTT", PEN, max_score=3).run()

    def test_unknown_memory_mode(self):
        with pytest.raises(AlignmentError):
            WfaEngine("A", "A", PEN, memory_mode="weird")

    def test_wavefront_log_scores_are_monotone(self):
        eng = WfaEngine("ACGTACGTAC", "ACGGACGTTC", PEN)
        eng.run()
        scores = [s for s, _c, _l, _h in eng.counters.wavefront_log]
        assert scores == sorted(scores)

    def test_wavefront_widths_bounded_by_score(self):
        eng = WfaEngine("ACGTACGTAC", "ACGGACGTTC", PEN)
        eng.run()
        for s, _c, lo, hi in eng.counters.wavefront_log:
            assert hi - lo + 1 <= 2 * s + 3


class TestGotohOracle:
    """The central correctness invariant: WFA score == Gotoh score."""

    @settings(max_examples=120, deadline=None)
    @given(pair=similar_pair())
    def test_affine_default_penalties(self, pair):
        p, t = pair
        assert WavefrontAligner(PEN).score(p, t) == gotoh_score(p, t, PEN)

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair(max_len=24, max_edits=10), pen=affine_penalties)
    def test_affine_random_penalties(self, pair, pen):
        p, t = pair
        assert WavefrontAligner(pen).score(p, t) == gotoh_score(p, t, pen)

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair())
    def test_edit_vs_levenshtein(self, pair):
        p, t = pair
        assert WavefrontAligner(EditPenalties()).score(p, t) == levenshtein_dp(p, t)

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair())
    def test_linear_vs_gotoh(self, pair):
        p, t = pair
        pen = LinearPenalties(mismatch=4, indel=2)
        assert WavefrontAligner(pen).score(p, t) == gotoh_score(p, t, pen)

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair())
    def test_score_only_equals_traceback_score(self, pair):
        p, t = pair
        al = WavefrontAligner(PEN)
        assert al.align(p, t, score_only=True).score == al.align(p, t).score
