"""Tests for PAF mapping output."""

import pytest

from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties
from repro.core.span import AlignmentSpan
from repro.data.paf import PafRecord, from_alignment, read_paf, write_paf
from repro.data.simulator import ReferenceSampler
from repro.errors import DataError

PEN = AffinePenalties(4, 6, 2)


class TestRecord:
    def test_line_format(self):
        rec = PafRecord(
            query_name="r1",
            query_len=100,
            query_start=0,
            query_end=100,
            strand="+",
            target_name="chr1",
            target_len=500,
            target_start=40,
            target_end=140,
            matches=98,
            alignment_len=100,
            cigar="100M",
        )
        fields = rec.line().split("\t")
        assert fields[0] == "r1"
        assert fields[4] == "+"
        assert fields[12] == "cg:Z:100M"
        assert len(fields) == 13

    def test_no_cigar_tag_when_empty(self):
        rec = PafRecord("r", 10, 0, 10, "+", "t", 20, 0, 10, 10, 10)
        assert len(rec.line().split("\t")) == 12

    def test_validation(self):
        with pytest.raises(DataError):
            PafRecord("r", 10, 0, 11, "+", "t", 20, 0, 10, 10, 10)
        with pytest.raises(DataError):
            PafRecord("r", 10, 0, 10, "*", "t", 20, 0, 10, 10, 10)
        with pytest.raises(DataError):
            PafRecord("r", 10, 0, 10, "+", "t", 20, 15, 10, 10, 10)


class TestFromAlignment:
    def test_semiglobal_alignment_to_paf(self):
        pattern = "ACGTACGTAC"
        text = "TTTT" + pattern + "GGGG"
        res = WavefrontAligner(PEN, span=AlignmentSpan.semiglobal()).align(
            pattern, text
        )
        rec = from_alignment(res, "read0", "contig0")
        assert rec.target_start == 4
        assert rec.target_end == 14
        assert rec.query_start == 0 and rec.query_end == 10
        assert rec.matches == 10
        assert rec.cigar == "10M"

    def test_score_only_rejected(self):
        res = WavefrontAligner(PEN).align("AC", "AC", score_only=True)
        with pytest.raises(DataError):
            from_alignment(res, "q", "t")


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        sampler = ReferenceSampler(
            seed=12, reference_length=4000, read_length=60, error_rate=0.02
        )
        aligner = WavefrontAligner(PEN, span=AlignmentSpan.semiglobal())
        records = []
        for i, read in enumerate(sampler.reads(10)):
            query = sampler.oriented_query(read)
            window, _offset = read.window(sampler.reference, flank=15)
            res = aligner.align(query, window)
            records.append(
                from_alignment(
                    res, f"read{i}", "ref", strand="-" if read.reverse else "+"
                )
            )
        path = tmp_path / "mappings.paf"
        assert write_paf(path, records) == 10
        loaded = read_paf(path)
        assert loaded == records

    def test_read_rejects_short_lines(self, tmp_path):
        path = tmp_path / "bad.paf"
        path.write_text("a\tb\tc\n")
        with pytest.raises(DataError):
            read_paf(path)

    def test_blank_lines_skipped(self, tmp_path):
        rec = PafRecord("r", 10, 0, 10, "+", "t", 20, 0, 10, 10, 10)
        path = tmp_path / "pad.paf"
        path.write_text(rec.line() + "\n\n")
        assert read_paf(path) == [rec]
