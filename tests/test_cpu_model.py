"""Tests for the CPU config and roofline model."""

import pytest

from repro.core.wavefront import WfaCounters
from repro.cpu.config import CpuConfig, xeon_gold_5120_dual
from repro.cpu.model import CpuModel, CpuTrafficModel
from repro.errors import ConfigError


class TestCpuConfig:
    def test_paper_preset_topology(self):
        cfg = xeon_gold_5120_dual()
        assert cfg.physical_cores == 28
        assert cfg.max_threads == 56
        assert cfg.frequency_hz == 2.2e9

    def test_effective_cores(self):
        cfg = xeon_gold_5120_dual()
        assert cfg.effective_cores(1) == 1
        assert cfg.effective_cores(28) == 28
        assert cfg.effective_cores(56) == pytest.approx(28 + 28 * cfg.smt_yield)

    def test_effective_cores_bounds(self):
        cfg = xeon_gold_5120_dual()
        with pytest.raises(ConfigError):
            cfg.effective_cores(0)
        with pytest.raises(ConfigError):
            cfg.effective_cores(57)

    def test_compute_rate_monotone(self):
        cfg = xeon_gold_5120_dual()
        rates = [cfg.compute_rate(t) for t in (1, 2, 8, 28, 56)]
        assert rates == sorted(rates)

    def test_bandwidth_saturates(self):
        cfg = xeon_gold_5120_dual()
        b1 = cfg.memory_bandwidth(1)
        b8 = cfg.memory_bandwidth(8)
        b56 = cfg.memory_bandwidth(56)
        assert b1 < b8 < b56 < cfg.mem_bandwidth_bytes_per_s
        # saturation: going 8 -> 56 threads gains far less than 1 -> 8
        assert (b56 - b8) < (b8 - b1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CpuConfig(sockets=0)
        with pytest.raises(ConfigError):
            CpuConfig(ipc=0)
        with pytest.raises(ConfigError):
            CpuConfig(smt_yield=1.5)
        with pytest.raises(ConfigError):
            CpuConfig(bw_saturation_threads=0)

    def test_with_helper(self):
        cfg = xeon_gold_5120_dual().with_(ipc=2.0)
        assert cfg.ipc == 2.0


def sample_counters(pairs: int = 100) -> WfaCounters:
    c = WfaCounters()
    c.cells_computed = 140 * pairs
    c.extend_steps = 120 * pairs
    c.score_iterations = 14 * pairs
    c.backtrace_ops = 100 * pairs
    c.offsets_allocated = 140 * pairs
    return c


class TestRoofline:
    def test_compute_bound_at_one_thread(self):
        model = CpuModel(xeon_gold_5120_dual())
        b = model.time_for(sample_counters(), 100, 200.0, 5_000_000, threads=1)
        assert b.bound == "compute"
        assert b.seconds == b.compute_seconds

    def test_memory_bound_at_many_threads(self):
        model = CpuModel(xeon_gold_5120_dual())
        b = model.time_for(sample_counters(), 100, 200.0, 5_000_000, threads=56)
        assert b.bound == "memory"

    def test_scaling_flattens(self):
        """The paper's Observation 1: poor scaling at high thread counts."""
        model = CpuModel(xeon_gold_5120_dual())
        curve = model.scaling_curve(
            sample_counters(), 100, 200.0, 5_000_000, [1, 2, 4, 8, 16, 32, 56]
        )
        times = [b.seconds for b in curve]
        assert times == sorted(times, reverse=True)  # monotone improvement
        early_gain = times[0] / times[3]  # 1 -> 8 threads
        late_gain = times[3] / times[6]  # 8 -> 56 threads
        assert early_gain > 4.0
        assert late_gain < 2.0

    def test_extrapolation_linear_in_pairs(self):
        model = CpuModel(xeon_gold_5120_dual())
        t1 = model.time_for(sample_counters(), 100, 200.0, 1_000_000, 56).seconds
        t5 = model.time_for(sample_counters(), 100, 200.0, 5_000_000, 56).seconds
        assert t5 == pytest.approx(5 * t1)

    def test_sample_size_invariance(self):
        """Counters for 2x the sample pairs give the same projection."""
        model = CpuModel(xeon_gold_5120_dual())
        a = model.time_for(sample_counters(100), 100, 200.0, 10**6, 16).seconds
        b = model.time_for(sample_counters(200), 200, 200.0, 10**6, 16).seconds
        assert a == pytest.approx(b)

    def test_validation(self):
        model = CpuModel(xeon_gold_5120_dual())
        with pytest.raises(ConfigError):
            model.time_for(sample_counters(), 0, 200.0, 10, 1)
        with pytest.raises(ConfigError):
            model.time_for(sample_counters(), 10, 200.0, -1, 1)


class TestTrafficModel:
    def test_components(self):
        tm = CpuTrafficModel(
            fixed_overhead_bytes=100, sequence_factor=2, metadata_spill_fraction=0.5
        )
        assert tm.bytes_per_pair(metadata_bytes_per_pair=40, seq_bytes=200) == (
            100 + 400 + 20
        )

    def test_higher_error_rate_means_more_traffic(self):
        tm = CpuTrafficModel()
        assert tm.bytes_per_pair(2000, 200) > tm.bytes_per_pair(500, 200)
