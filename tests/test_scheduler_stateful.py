"""Stateful Hypothesis test: the scheduler never drops or duplicates a pair.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` accumulates a
workload and a fault plan through arbitrary interleavings of rules, then
flushes through a :class:`~repro.pim.scheduler.BatchScheduler`.  The
invariant under ANY fault plan (transient deaths, persistent deaths,
corruption, even every-DPU-dead):

* returned pair indices are unique, and
* ``completed_pairs`` and ``abandoned_pairs`` of the recovery report
  partition exactly ``0..n-1`` — every pair is accounted for once, as
  either a delivered result or an explicit abandonment.  Nothing is
  silently lost, nothing is double-delivered.

When the plan contains only DPU deaths (no data corruption), the machine
additionally pins byte-identical results against a fault-free baseline —
recovery must be invisible in the output.

The ``flush_resume`` rule extends the same invariant across a crash:
journal the run, truncate at an arbitrary record boundary, resume —
with or without a fleet-health ledger quarantining DPUs — and the
delivered + abandoned pairs still partition the workload exactly, with
results byte-identical to the uninterrupted run.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.core.penalties import EditPenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import DegradedCapacity
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan, MramCorruption, RetryPolicy
from repro.pim.fleet import FleetCoordinator
from repro.pim.health import FleetHealth, HealthPolicy
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem

NUM_DPUS = 4


def make_system() -> PimSystem:
    return PimSystem(
        PimSystemConfig(
            num_dpus=NUM_DPUS, num_ranks=1, tasklets=4, num_simulated_dpus=NUM_DPUS
        ),
        kernel_config=KernelConfig(
            penalties=EditPenalties(), max_read_len=32, max_edits=4
        ),
    )


def global_indices(run) -> list[int]:
    """Round-local result indices rebased to the whole workload."""
    out = []
    start = 0
    for rnd, size in zip(run.per_round, run.schedule.round_sizes()):
        out.extend(i + start for i, _, _ in rnd.results)
        start += size
    return out


def flat_results(run) -> list[tuple[int, int, str]]:
    out = []
    start = 0
    for rnd, size in zip(run.per_round, run.schedule.round_sizes()):
        out.extend((i + start, s, str(c)) for i, s, c in rnd.results)
        start += size
    return sorted(out)


class SchedulerFaultMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.pending: list = []
        self.deaths: dict = {}  # dpu_id -> attempts tuple or None (persistent)
        self.corruptions: list = []
        self.plan_seed = 1

    # -- build up state -----------------------------------------------------

    @rule(n=st.integers(min_value=1, max_value=10), seed=st.integers(0, 2**16))
    def add_pairs(self, n: int, seed: int) -> None:
        gen = ReadPairGenerator(length=24, error_rate=0.05, seed=seed)
        self.pending.extend(gen.pairs(n))

    @rule(dpu=st.integers(0, NUM_DPUS - 1), transient=st.booleans())
    def kill_dpu(self, dpu: int, transient: bool) -> None:
        self.deaths[dpu] = (0,) if transient else None

    @rule(
        dpu=st.integers(0, NUM_DPUS - 1),
        region=st.sampled_from(["header", "input", "output"]),
    )
    def corrupt_dpu(self, dpu: int, region: str) -> None:
        self.corruptions.append(
            MramCorruption(dpu_id=dpu, region=region, attempts=(0,))
        )

    @rule(seed=st.integers(1, 2**16))
    def reseed(self, seed: int) -> None:
        self.plan_seed = seed

    @rule()
    def clear_faults(self) -> None:
        self.deaths = {}
        self.corruptions = []

    # -- flush + check ------------------------------------------------------

    def _plan(self):
        if not self.deaths and not self.corruptions:
            return None
        return FaultPlan(
            seed=self.plan_seed,
            deaths=tuple(
                DpuDeath(dpu_id=d, attempts=a) for d, a in sorted(self.deaths.items())
            ),
            corruptions=tuple(self.corruptions),
        )

    @precondition(lambda self: self.pending)
    @rule(pairs_per_round=st.integers(min_value=3, max_value=17))
    def flush(self, pairs_per_round: int) -> None:
        pairs, plan = self.pending, self._plan()
        self.pending = []
        n = len(pairs)
        run = BatchScheduler(make_system()).run(
            pairs,
            pairs_per_round=pairs_per_round,
            collect_results=True,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, max_requeues=NUM_DPUS - 1),
        )
        got = global_indices(run)
        assert len(got) == len(set(got)), "duplicate pair index delivered"
        if plan is None:
            assert run.recovery is None
            assert sorted(got) == list(range(n))
            return
        rec = run.recovery
        assert rec is not None
        completed = sorted(rec.completed_pairs)
        abandoned = sorted(rec.abandoned_pairs)
        assert sorted(got) == completed, "results disagree with recovery report"
        assert not set(completed) & set(abandoned)
        assert sorted(completed + abandoned) == list(range(n)), (
            "pairs dropped or duplicated across completion + abandonment"
        )
        if not self.corruptions:
            # deaths only: recovery must be invisible in the delivered data
            baseline = BatchScheduler(make_system()).run(
                pairs, pairs_per_round=pairs_per_round, collect_results=True
            )
            expected = dict(
                (i, (s, c)) for i, s, c in flat_results(baseline)
            )
            for i, s, c in flat_results(run):
                assert (s, c) == expected[i], f"pair {i} changed under recovery"

    @precondition(lambda self: self.pending)
    @rule(
        pairs_per_round=st.integers(min_value=3, max_value=17),
        crash_after=st.integers(min_value=1, max_value=4),
        with_health=st.booleans(),
    )
    def flush_resume(
        self, pairs_per_round: int, crash_after: int, with_health: bool
    ) -> None:
        """Crash after an arbitrary journaled round, resume, lose nothing."""
        pairs, plan = self.pending, self._plan()
        self.pending = []
        n = len(pairs)
        policy = RetryPolicy(max_attempts=2, max_requeues=NUM_DPUS - 1)
        health_policy = (
            HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9)
            if with_health
            else None
        )

        def health():
            if health_policy is None:
                return None
            return FleetHealth(NUM_DPUS, policy=health_policy)

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "run.jsonl"
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedCapacity)
                full = BatchScheduler(make_system()).run(
                    pairs,
                    pairs_per_round=pairs_per_round,
                    collect_results=True,
                    fault_plan=plan,
                    retry_policy=policy,
                    health=health(),
                    journal=path,
                )
                lines = path.read_text().splitlines()
                keep = 1 + min(crash_after, len(lines) - 1)  # header + k rounds
                path.write_text("\n".join(lines[:keep]) + "\n")
                resumed = BatchScheduler(make_system()).resume_run(
                    path,
                    pairs,
                    pairs_per_round=pairs_per_round,
                    collect_results=True,
                    fault_plan=plan,
                    retry_policy=policy,
                    health=health(),
                )
        assert resumed.rounds_replayed == keep - 1
        got = global_indices(resumed)
        assert len(got) == len(set(got)), "resume double-delivered a pair"
        assert flat_results(resumed) == flat_results(full), (
            "resume changed delivered results"
        )
        if plan is None:
            assert sorted(got) == list(range(n))
            return
        rec = resumed.recovery
        assert rec is not None
        completed = sorted(rec.completed_pairs)
        abandoned = sorted(rec.abandoned_pairs)
        assert sorted(got) == completed
        assert sorted(completed + abandoned) == list(range(n)), (
            "resume dropped or duplicated pairs across the crash boundary"
        )


SchedulerFaultMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=10, deadline=None
)
TestSchedulerNeverLosesPairs = SchedulerFaultMachine.TestCase


# -- the same invariant, one level up: a sharded fleet ------------------------

SHARDS = 2
FLEET_DPUS = SHARDS * NUM_DPUS


def make_fleet(health: bool = False) -> FleetCoordinator:
    return FleetCoordinator(
        PimSystemConfig(
            num_dpus=NUM_DPUS, num_ranks=1, tasklets=4, num_simulated_dpus=NUM_DPUS
        ),
        KernelConfig(penalties=EditPenalties(), max_read_len=32, max_edits=4),
        shards=SHARDS,
        health_policy=(
            HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9)
            if health
            else None
        ),
    )


class FleetFaultMachine(RuleBasedStateMachine):
    """The scheduler machine's invariant, federated across shards.

    Deaths here are *global-domain* — a drawn DPU id indexes the whole
    ``SHARDS * NUM_DPUS`` fleet, so a fault plan may gut one shard while
    leaving another untouched.  Whatever the interleaving:

    * delivered pair indices stay unique,
    * ``completed_pairs`` + ``abandoned_pairs`` partition ``0..n-1``,
    * deaths-only plans deliver byte-identical alignments to an
      unsharded fault-free baseline, and
    * crashing mid-run (one shard journal torn at a record boundary,
      another deleted outright) and resuming from the federated journal
      replays to identical results and identical per-shard health
      ledgers.
    """

    def __init__(self) -> None:
        super().__init__()
        self.pending: list = []
        self.deaths: dict = {}
        self.plan_seed = 1

    @rule(n=st.integers(min_value=1, max_value=10), seed=st.integers(0, 2**16))
    def add_pairs(self, n: int, seed: int) -> None:
        gen = ReadPairGenerator(length=24, error_rate=0.05, seed=seed)
        self.pending.extend(gen.pairs(n))

    @rule(dpu=st.integers(0, FLEET_DPUS - 1), transient=st.booleans())
    def kill_dpu(self, dpu: int, transient: bool) -> None:
        self.deaths[dpu] = (0,) if transient else None

    @rule(seed=st.integers(1, 2**16))
    def reseed(self, seed: int) -> None:
        self.plan_seed = seed

    @rule()
    def clear_faults(self) -> None:
        self.deaths = {}

    def _plan(self):
        if not self.deaths:
            return None
        return FaultPlan(
            seed=self.plan_seed,
            deaths=tuple(
                DpuDeath(dpu_id=d, attempts=a) for d, a in sorted(self.deaths.items())
            ),
        )

    def _check_partition(self, run, n: int, plan) -> None:
        got = sorted(i for i, _, _ in run.results())
        assert len(got) == len(set(got)), "duplicate pair index delivered"
        if plan is None:
            assert run.recovery is None
            assert got == list(range(n))
            return
        rec = run.recovery
        assert rec is not None
        completed = sorted(rec.completed_pairs)
        abandoned = sorted(rec.abandoned_pairs)
        assert got == completed, "results disagree with recovery report"
        assert not set(completed) & set(abandoned)
        assert sorted(completed + abandoned) == list(range(n)), (
            "pairs dropped or duplicated across the fleet"
        )

    @precondition(lambda self: self.pending)
    @rule(pairs_per_round=st.integers(min_value=3, max_value=17))
    def flush(self, pairs_per_round: int) -> None:
        pairs, plan = self.pending, self._plan()
        self.pending = []
        n = len(pairs)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            run = make_fleet().run(
                pairs,
                pairs_per_round=pairs_per_round,
                collect_results=True,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_attempts=2, max_requeues=NUM_DPUS - 1),
            )
        self._check_partition(run, n, plan)
        # deaths never change delivered data, sharded or not
        baseline = BatchScheduler(make_system()).run(
            pairs, pairs_per_round=pairs_per_round, collect_results=True
        )
        expected = dict((i, (s, c)) for i, s, c in flat_results(baseline))
        for i, s, c in sorted(run.results()):
            assert (s, str(c)) == expected[i], f"pair {i} changed under recovery"

    @precondition(lambda self: self.pending)
    @rule(
        pairs_per_round=st.integers(min_value=3, max_value=17),
        crash_after=st.integers(min_value=1, max_value=4),
        lose_whole_shard=st.booleans(),
        with_health=st.booleans(),
    )
    def flush_resume(
        self,
        pairs_per_round: int,
        crash_after: int,
        lose_whole_shard: bool,
        with_health: bool,
    ) -> None:
        """Tear the federated journal mid-run, resume, lose nothing."""
        pairs, plan = self.pending, self._plan()
        self.pending = []
        n = len(pairs)
        policy = RetryPolicy(max_attempts=2, max_requeues=NUM_DPUS - 1)
        with tempfile.TemporaryDirectory() as tmp:
            journal = Path(tmp) / "journal"
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedCapacity)
                reference = make_fleet(with_health)
                full = reference.run(
                    pairs,
                    pairs_per_round=pairs_per_round,
                    collect_results=True,
                    fault_plan=plan,
                    retry_policy=policy,
                    journal=journal,
                )
                shard_files = sorted(journal.glob("shard-*.jsonl"))
                torn = shard_files[0]
                lines = torn.read_text().splitlines()
                keep = 1 + min(crash_after, len(lines) - 1)
                torn.write_text("\n".join(lines[:keep]) + "\n")
                if lose_whole_shard and len(shard_files) > 1:
                    shard_files[-1].unlink()
                resumer = make_fleet(with_health)
                resumed = resumer.resume_run(
                    journal,
                    pairs,
                    pairs_per_round=pairs_per_round,
                    collect_results=True,
                    fault_plan=plan,
                    retry_policy=policy,
                )
        self._check_partition(resumed, n, plan)
        assert sorted(resumed.results()) == sorted(full.results()), (
            "resume changed delivered results"
        )
        if plan is not None:
            assert resumed.recovery.to_dict() == full.recovery.to_dict()
        assert resumed.total_seconds == full.total_seconds
        if with_health:
            assert resumer.health_states() == reference.health_states(), (
                "health ledgers did not replay to identical state"
            )


FleetFaultMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=8, deadline=None
)
TestFleetNeverLosesPairs = FleetFaultMachine.TestCase
