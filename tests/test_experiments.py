"""Tests for the Fig. 1 harness and the sweeps (shape assertions).

These run miniature versions of every experiment and assert the *shape*
properties the paper reports — the same checks EXPERIMENTS.md documents.
"""

import math

import pytest

from repro.experiments.fig1 import Fig1Config, run_fig1
from repro.experiments.sweeps import (
    algorithm_comparison,
    allocator_policy_ablation,
    dpu_count_sweep,
    error_rate_sweep,
    read_length_sweep,
    tasklet_sweep,
)


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(
        Fig1Config(
            cpu_sample_pairs=120,
            pim_sample_pairs_per_dpu=24,
            num_simulated_dpus=1,
        )
    )


class TestFig1(object):
    def test_two_panels(self, fig1):
        assert [p.error_rate for p in fig1.panels] == [0.02, 0.04]

    def test_pim_beats_cpu_at_both_rates(self, fig1):
        """The paper's headline: PIM total > 1x over 56-thread CPU."""
        for p in fig1.panels:
            assert p.total_speedup > 2.0
            assert p.kernel_speedup > p.total_speedup

    def test_speedups_in_paper_ballpark(self, fig1):
        """Within 2x of every published headline number."""
        from repro.perf.calibration import PAPER_TARGETS

        p2 = fig1.panel(0.02)
        p4 = fig1.panel(0.04)
        assert 0.5 < p2.total_speedup / PAPER_TARGETS.total_speedup_e2 < 2.0
        assert 0.5 < p4.total_speedup / PAPER_TARGETS.total_speedup_e4 < 2.0
        assert 0.5 < p2.kernel_speedup / PAPER_TARGETS.kernel_speedup_e2 < 2.0
        assert 0.5 < p4.kernel_speedup / PAPER_TARGETS.kernel_speedup_e4 < 2.0

    def test_kernel_advantage_shrinks_with_error_rate(self, fig1):
        """Paper: 37.4x at E=2% vs 12.3x at E=4%."""
        assert fig1.panel(0.02).kernel_speedup > fig1.panel(0.04).kernel_speedup

    def test_cpu_scaling_flattens(self, fig1):
        for p in fig1.panels:
            times = [b.seconds for b in p.cpu_curve]
            threads = [b.threads for b in p.cpu_curve]
            assert threads == [1, 2, 4, 8, 16, 32, 56]
            assert times == sorted(times, reverse=True)
            # near-linear early, flat late
            assert times[0] / times[2] > 3.0
            assert times[4] / times[6] < 1.5

    def test_transfer_dominates_pim_total(self, fig1):
        """Paper: Kernel-only speedup is ~8x Total at E=2% — transfers
        dominate the PIM end-to-end time."""
        p = fig1.panel(0.02)
        assert p.pim.transfer_seconds > p.pim.kernel_seconds

    def test_kernel_time_grows_with_error_rate(self, fig1):
        assert fig1.panel(0.04).pim.kernel_seconds > fig1.panel(0.02).pim.kernel_seconds

    def test_report_renders(self, fig1):
        text = fig1.report()
        assert "Fig. 1 panel E=2%" in text
        assert "PIM-Kernel" in text
        assert "paper vs measured" in text

    def test_comparison_rows_complete(self, fig1):
        rows = fig1.comparison_rows()
        assert len(rows) == 4

    def test_panel_lookup(self, fig1):
        assert fig1.panel(0.02).error_rate == 0.02
        with pytest.raises(KeyError):
            fig1.panel(0.5)


class TestTaskletSweep:
    def test_monotone_then_flat(self):
        res = tasklet_sweep(tasklet_counts=(1, 2, 4, 8, 16), sample_pairs_per_dpu=16)
        ks = res.series("kernel_s")
        assert ks[0] > ks[1] > ks[2] > ks[3] * 0.999
        assert ks[4] <= ks[3] * 1.001

    def test_report(self):
        res = tasklet_sweep(tasklet_counts=(1, 4), sample_pairs_per_dpu=8)
        assert "tasklet sweep" in res.report()


class TestAllocatorAblation:
    def test_mram_policy_wins(self):
        res = allocator_policy_ablation(sample_pairs_per_dpu=12)
        by_label = {r.label: r.values for r in res.rows}
        assert by_label["mram"]["max_tasklets"] == 24
        assert by_label["wram"]["max_tasklets"] < 8
        assert by_label["mram"]["kernel_s"] < by_label["wram"]["kernel_s"]


class TestExtensionSweeps:
    def test_error_rate_sweep_monotone_kernel(self):
        res = error_rate_sweep(rates=(0.01, 0.04, 0.08), sample_pairs_per_dpu=8)
        ks = res.series("kernel_s")
        assert ks[0] < ks[1] < ks[2]

    def test_read_length_sweep_runs(self):
        res = read_length_sweep(lengths=(100, 200), sample_pairs_per_dpu=4)
        assert len(res.rows) == 2
        assert all(r.values["kernel_s"] > 0 for r in res.rows)

    def test_dpu_count_sweep_kernel_scales_transfers_do_not(self):
        res = dpu_count_sweep(dpu_counts=(64, 256, 1280), sample_pairs_per_dpu=12)
        ks = res.series("kernel_s")
        totals = res.series("total_s")
        assert ks[0] > ks[1] > ks[2]
        # total time is eventually transfer-bound: sublinear improvement
        assert totals[0] / totals[2] < ks[0] / ks[2]

    def test_algorithm_comparison_wfa_wins(self):
        res = algorithm_comparison(sample_pairs_per_dpu=8)
        by_label = {r.label.split("(")[0]: r.values for r in res.rows}
        assert by_label["wfa"]["kernel_s"] < by_label["banded"]["kernel_s"]
        assert by_label["wfa"]["cells_per_pair"] < by_label["banded"]["cells_per_pair"]
