"""Integrity of the campaign evidence report.

``validate_campaign_report`` must fully recompute a report before CI can
cite a cell as evidence: every planted inconsistency here — a tampered
metric, a forged delta, a missing baseline cell, a duplicated or
reordered cell, a cooked summary — must be rejected with a typed
:class:`~repro.errors.QaError`, mirroring the ``validate_qa_report``
tamper tests in ``tests/test_qa_differential.py``.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import QaError
from repro.pim.ablation import AblationConfig
from repro.qa.campaign import (
    CampaignConfig,
    FaultGridPoint,
    run_campaign,
    validate_campaign_report,
)

CONFIG = CampaignConfig(
    pairs=8,
    pairs_per_round=4,
    serve_requests=0,
    ablations=(
        AblationConfig(name="baseline"),
        AblationConfig(name="breaker_off", breaker=False),
    ),
    grid=(
        FaultGridPoint(name="calm"),
        FaultGridPoint(name="dead_dpu", dead_dpus=1),
    ),
)


@pytest.fixture(scope="module")
def lines():
    return run_campaign(CONFIG).to_lines()


def tampered(lines, mutate):
    out = copy.deepcopy(lines)
    mutate(out)
    return out


def cell_record(lines, name):
    for record in lines:
        if record.get("record") == "cell" and record["cell"] == name:
            return record
    raise AssertionError(f"no cell {name}")


class TestAccepts:
    def test_pristine_report_validates(self, lines):
        summary = validate_campaign_report(lines)
        assert summary["ok"] is True
        assert summary["cells"] == 4

    def test_roundtrip_through_file(self, lines, tmp_path):
        path = tmp_path / "report.jsonl"
        path.write_text(
            "".join(json.dumps(l, sort_keys=True) + "\n" for l in lines)
        )
        assert validate_campaign_report(path) == validate_campaign_report(lines)


class TestRejectsTampering:
    def test_tampered_metric_breaks_throughput_recompute(self, lines):
        def mutate(out):
            cell_record(out, "baseline@calm")["metrics"]["total_seconds"] *= 2

        with pytest.raises(QaError, match="throughput"):
            validate_campaign_report(tampered(lines, mutate))

    def test_forged_oracle_agreement(self, lines):
        def mutate(out):
            cell_record(out, "breaker_off@dead_dpu")["metrics"][
                "oracle_agreement"
            ] = 0.5

        with pytest.raises(QaError, match="oracle_agreement"):
            validate_campaign_report(tampered(lines, mutate))

    def test_forged_delta(self, lines):
        def mutate(out):
            cell_record(out, "breaker_off@calm")["delta"][
                "throughput_ratio"
            ] = 2.0

        with pytest.raises(QaError, match="delta does not recompute"):
            validate_campaign_report(tampered(lines, mutate))

    def test_delta_planted_on_baseline_cell(self, lines):
        def mutate(out):
            donor = cell_record(out, "breaker_off@calm")["delta"]
            cell_record(out, "baseline@calm")["delta"] = dict(donor)

        with pytest.raises(QaError, match="baseline cells must not"):
            validate_campaign_report(tampered(lines, mutate))

    def test_forged_resume_claim(self, lines):
        def mutate(out):
            cell_record(out, "baseline@calm")["metrics"][
                "resume_identical"
            ] = True

        with pytest.raises(QaError, match="resume"):
            validate_campaign_report(tampered(lines, mutate))

    def test_forged_restart_bill(self, lines):
        def mutate(out):
            cell_record(out, "breaker_off@dead_dpu")["metrics"][
                "restart_overhead_seconds"
            ] = 1.0

        with pytest.raises(QaError, match="restart"):
            validate_campaign_report(tampered(lines, mutate))

    def test_cooked_summary(self, lines):
        def mutate(out):
            out[-1]["oracle_ok"] += 1

        with pytest.raises(QaError, match="summary does not recompute"):
            validate_campaign_report(tampered(lines, mutate))


class TestRejectsCellSetDamage:
    def test_missing_baseline_cell(self, lines):
        def mutate(out):
            out.remove(cell_record(out, "baseline@calm"))

        with pytest.raises(QaError, match="missing cells"):
            validate_campaign_report(tampered(lines, mutate))

    def test_duplicated_cell(self, lines):
        def mutate(out):
            out.insert(2, copy.deepcopy(cell_record(out, "baseline@calm")))

        with pytest.raises(QaError, match="duplicated cells"):
            validate_campaign_report(tampered(lines, mutate))

    def test_reordered_cells(self, lines):
        def mutate(out):
            out[1], out[2] = out[2], out[1]

        with pytest.raises(QaError, match="cells disagree|order"):
            validate_campaign_report(tampered(lines, mutate))

    def test_smuggled_foreign_cell(self, lines):
        def mutate(out):
            forged = copy.deepcopy(cell_record(out, "breaker_off@calm"))
            forged["cell"] = "breaker_off@stall"
            forged["fault_point"] = "stall"
            out.insert(len(out) - 1, forged)

        with pytest.raises(QaError, match="unknown cells"):
            validate_campaign_report(tampered(lines, mutate))

    def test_missing_metric_key(self, lines):
        def mutate(out):
            del cell_record(out, "baseline@calm")["metrics"]["faults_seen"]

        with pytest.raises(QaError, match="missing keys"):
            validate_campaign_report(tampered(lines, mutate))


class TestRejectsEnvelopeDamage:
    def test_foreign_schema(self, lines):
        def mutate(out):
            out[0]["schema"] = "repro.qa.campaign/v0"

        with pytest.raises(QaError, match="bad header"):
            validate_campaign_report(tampered(lines, mutate))

    def test_config_cell_cross_mismatch(self, lines):
        def mutate(out):
            out[0]["config"]["grid"] = out[0]["config"]["grid"][:1]

        with pytest.raises(QaError, match="unknown cells"):
            validate_campaign_report(tampered(lines, mutate))

    def test_missing_summary(self, lines):
        with pytest.raises(QaError, match="summary"):
            validate_campaign_report(copy.deepcopy(lines)[:-1])

    def test_empty_report(self):
        with pytest.raises(QaError, match="at least a header"):
            validate_campaign_report([])

    def test_malformed_jsonl_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "header"\nnot json\n')
        with pytest.raises(QaError, match="not valid JSONL"):
            validate_campaign_report(path)
