"""Tests for the DPU pipeline timing model."""

import pytest

from repro.errors import ConfigError
from repro.pim.config import DpuConfig, DpuTimingConfig
from repro.pim.dpu import Dpu
from repro.pim.tasklet import TaskletStats


def stats(tid: int, instr: float, dma: float = 0.0) -> TaskletStats:
    s = TaskletStats(tasklet_id=tid)
    s.instructions = instr
    s.dma_cycles = dma
    return s


@pytest.fixture
def dpu():
    return Dpu(DpuConfig())


class TestPipelineModel:
    def test_single_tasklet_is_latency_bound(self, dpu):
        cycles, bound = dpu.kernel_cycles([stats(0, 1000)])
        assert cycles == 11 * 1000
        assert bound == "latency"

    def test_eleven_balanced_tasklets_reach_throughput(self, dpu):
        ts = [stats(i, 1000) for i in range(11)]
        cycles, bound = dpu.kernel_cycles(ts)
        assert cycles == 11_000  # sum == 11 * max: one instruction/cycle
        assert bound in ("throughput", "latency")  # equal at the knee

    def test_sixteen_tasklets_throughput_bound(self, dpu):
        ts = [stats(i, 1000) for i in range(16)]
        cycles, bound = dpu.kernel_cycles(ts)
        assert cycles == 16_000
        assert bound == "throughput"

    def test_imbalance_penalized_below_knee(self, dpu):
        ts = [stats(0, 1000), stats(1, 10)]
        cycles, bound = dpu.kernel_cycles(ts)
        assert cycles == 11 * 1000
        assert bound == "latency"

    def test_dma_bound(self, dpu):
        ts = [stats(i, 100, dma=50_000) for i in range(16)]
        cycles, bound = dpu.kernel_cycles(ts)
        assert cycles == 16 * 50_000
        assert bound == "dma"

    def test_no_tasklets(self, dpu):
        assert dpu.kernel_cycles([]) == (0.0, "throughput")

    def test_too_many_tasklets_rejected(self, dpu):
        ts = [stats(i, 1) for i in range(25)]
        with pytest.raises(ConfigError):
            dpu.kernel_cycles(ts)

    def test_scaling_saturates_at_pipeline_depth(self, dpu):
        """Adding tasklets helps until ~11, then stops (PrIM behaviour)."""
        total_work = 110_000
        times = {}
        for t in (1, 2, 4, 8, 11, 16, 22):
            ts = [stats(i, total_work / t) for i in range(t)]
            times[t], _ = dpu.kernel_cycles(ts)
        assert times[1] > times[2] > times[4] > times[8] > times[11] * 0.999
        assert times[16] == pytest.approx(times[11])
        assert times[11] == pytest.approx(total_work)


class TestSummaries:
    def test_summarize_aggregates(self, dpu):
        ts = [stats(0, 500, dma=100), stats(1, 700, dma=50)]
        ts[0].pairs_done = 3
        ts[1].pairs_done = 4
        ts[0].dma_bytes = 64
        summary = dpu.summarize(ts)
        assert summary.pairs_done == 7
        assert summary.instructions == 1200
        assert summary.dma_cycles == 150
        assert summary.dma_bytes == 64
        assert summary.cycles == 11 * 700
        assert summary.seconds == pytest.approx(11 * 700 / 425e6)
        assert summary.tasklets == 2

    def test_seconds_follow_clock(self):
        fast = Dpu(DpuConfig(timing=DpuTimingConfig(frequency_hz=850e6)))
        slow = Dpu(DpuConfig(timing=DpuTimingConfig(frequency_hz=425e6)))
        ts = [stats(0, 1000)]
        assert fast.summarize(ts).seconds == pytest.approx(
            slow.summarize(ts).seconds / 2
        )


class TestDpuConstruction:
    def test_memories_sized_from_config(self, dpu):
        assert dpu.mram.capacity == 64 * 1024 * 1024
        assert dpu.wram.capacity == 64 * 1024

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            Dpu(DpuConfig(max_tasklets=0))
        with pytest.raises(ConfigError):
            Dpu(DpuConfig(wram_bytes=0))
