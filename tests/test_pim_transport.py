"""Acceptance suite for the modeled coordinator<->shard transport.

The transport's core claims, pinned:

- a calm plan never constructs a transport, so the networked code path
  is byte-identical to the direct fleet path — results, recovery,
  timings, metric snapshots;
- under a seeded :class:`~repro.pim.transport.NetworkFaultPlan` with at
  least one live shard, every pair completes oracle-equal and the whole
  run (including the transport report) is deterministic per seed;
- hedged work-stealing beats timeout-retry-only on modeled
  ``total_seconds`` under a long one-shard partition (the acceptance
  pin the ISSUE names);
- health-ledger deltas ride home from pool workers, so the per-shard
  health docs are byte-identical at ``shard_workers`` 0, 1 and 2.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.penalties import EditPenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError, DegradedCapacity, TransportError
from repro.obs.events import validate_event_log
from repro.obs.telemetry import RunTelemetry
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan, RetryPolicy
from repro.pim.fleet import FleetCoordinator
from repro.pim.health import HealthPolicy
from repro.pim.kernel import KernelConfig
from repro.pim.transport import (
    Envelope,
    LinkDelay,
    LinkDrop,
    LinkDuplicate,
    LinkReorder,
    NetworkFaultPlan,
    Partition,
    TransportPolicy,
)

NUM_DPUS = 4


def make_config() -> PimSystemConfig:
    return PimSystemConfig(
        num_dpus=NUM_DPUS, num_ranks=1, tasklets=4, num_simulated_dpus=NUM_DPUS
    )


def make_kernel() -> KernelConfig:
    return KernelConfig(
        penalties=EditPenalties(), max_read_len=32, max_edits=4
    )


def make_fleet(shards: int, **kwargs) -> FleetCoordinator:
    return FleetCoordinator(make_config(), make_kernel(), shards=shards, **kwargs)


def make_pairs(n: int, seed: int = 7, length: int = 24):
    return ReadPairGenerator(length=length, error_rate=0.05, seed=seed).pairs(n)


def kitchen_sink_plan(seed: int = 3) -> NetworkFaultPlan:
    """Every fault family at once, on a 2-shard fleet's links."""
    return NetworkFaultPlan(
        seed=seed,
        drops=(
            LinkDrop(shard_id=0, p=0.2, direction="work"),
            LinkDrop(shard_id=1, p=0.3, direction="both"),
        ),
        duplicates=(LinkDuplicate(shard_id=1, p=0.3),),
        delays=(LinkDelay(shard_id=0, delay_s=1e-4, jitter_s=5e-5),),
        reorders=(LinkReorder(shard_id=1, p=0.2, penalty_s=2e-4),),
        partitions=(Partition(start_s=0.01, end_s=0.02, shard_ids=(1,)),),
    )


class TestPlanValidation:
    def test_empty_plan_is_calm(self):
        assert NetworkFaultPlan().is_calm()

    def test_zero_effect_entries_are_calm(self):
        plan = NetworkFaultPlan(
            drops=(LinkDrop(shard_id=0, p=0.0),),
            duplicates=(LinkDuplicate(shard_id=1, p=0.0),),
            delays=(LinkDelay(shard_id=0, delay_s=0.0, jitter_s=0.0),),
            reorders=(LinkReorder(shard_id=1, p=0.0),),
        )
        assert plan.is_calm()
        assert not kitchen_sink_plan().is_calm()

    def test_bad_probabilities_refused(self):
        with pytest.raises(ConfigError):
            LinkDrop(shard_id=0, p=1.5)
        with pytest.raises(ConfigError):
            LinkDuplicate(shard_id=0, p=-0.1)
        with pytest.raises(ConfigError):
            LinkDelay(shard_id=0, delay_s=-1e-3)
        with pytest.raises(ConfigError):
            LinkDrop(shard_id=0, p=0.5, direction="sideways")

    def test_bad_policy_refused(self):
        with pytest.raises(ConfigError):
            TransportPolicy(link_timeout_s=0.0)
        with pytest.raises(ConfigError):
            TransportPolicy(max_redeliveries=0)
        with pytest.raises(ConfigError):
            TransportPolicy(backoff_factor=0.5)

    def test_round_trip_through_dict(self):
        plan = kitchen_sink_plan()
        assert NetworkFaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_garbage_refused(self):
        with pytest.raises(ConfigError):
            NetworkFaultPlan.from_dict({"drops": [{"nope": 1}]})
        with pytest.raises(ConfigError):
            NetworkFaultPlan.from_dict({"schema": "other/v9"})

    def test_policy_without_plan_refused(self):
        with pytest.raises(ConfigError):
            make_fleet(2, transport_policy=TransportPolicy())

    def test_envelope_key_is_per_round_not_per_shard(self):
        # a stolen round's result must dedup against the original's
        # late copy, so the idempotency key ignores the executing shard
        assert Envelope.make_key("result", 7) == "result/round-0007"


class TestCalmByteIdentity:
    @pytest.mark.parametrize("shard_workers", [0, 2])
    def test_calm_plan_is_the_direct_path(self, shard_workers):
        """A calm plan never constructs a transport: results, timings,
        and the metrics snapshot are byte-identical to no plan at all."""
        pairs = make_pairs(48)
        direct = make_fleet(
            2, shard_workers=shard_workers, telemetry=RunTelemetry()
        )
        calm = make_fleet(
            2,
            shard_workers=shard_workers,
            telemetry=RunTelemetry(),
            net_plan=NetworkFaultPlan(drops=(LinkDrop(shard_id=0, p=0.0),)),
        )
        assert calm.transport is None
        run_a = direct.run(pairs, pairs_per_round=8, collect_results=True)
        run_b = calm.run(pairs, pairs_per_round=8, collect_results=True)
        assert run_a.to_dict() == run_b.to_dict()
        assert sorted(run_a.results()) == sorted(run_b.results())
        assert run_a.total_seconds == run_b.total_seconds
        assert direct.metrics_snapshot() == calm.metrics_snapshot()


class TestNetworkedRuns:
    def test_lossy_run_oracle_equal_and_deterministic(self):
        pairs = make_pairs(48)
        oracle = make_fleet(2).run(pairs, pairs_per_round=8, collect_results=True)

        def lossy_run():
            fleet = make_fleet(2, net_plan=kitchen_sink_plan())
            assert fleet.transport is not None
            return fleet.run(pairs, pairs_per_round=8, collect_results=True)

        run_a, run_b = lossy_run(), lossy_run()
        assert sorted(run_a.results()) == sorted(oracle.results())
        assert run_a.to_dict() == run_b.to_dict()
        report = run_a.transport
        assert report is not None
        assert report.drops > 0
        assert report.redeliveries > 0
        assert report.duplicates_absorbed > 0
        assert report.partition_blocked > 0
        # redelivery only adds modeled time
        assert run_a.total_seconds >= oracle.total_seconds

    def test_transport_counters_and_events(self):
        telemetry = RunTelemetry()
        fleet = make_fleet(2, telemetry=telemetry, net_plan=kitchen_sink_plan())
        fleet.run(make_pairs(48), pairs_per_round=8, collect_results=True)
        families = {
            f["name"]: f for f in fleet.metrics_snapshot()["families"]
        }
        for key in (
            "pim_net_envelopes_total",
            "pim_net_drops_total",
            "pim_net_redeliveries_total",
            "pim_net_duplicates_absorbed_total",
            "pim_net_partition_blocked_total",
        ):
            assert key in families, f"{key} missing from the federated snapshot"
            assert sum(s["value"] for s in families[key]["series"]) > 0
        records = fleet.event_records()
        validate_event_log(records)
        kinds = {r["kind"] for r in records[1:]}
        assert {"net_drop", "net_redeliver", "net_partition"} <= kinds

    def test_repeat_runs_salt_the_fault_rng(self):
        """A long-lived transport (the serve path: one ``fleet.run`` per
        batch) must not replay the same drop decisions every run —
        round indices restart at 0, so ``begin_run`` salts the RNG.
        The first run's salt is 0: byte-identical to a fresh fleet."""
        plan = NetworkFaultPlan(seed=5, drops=(LinkDrop(shard_id=1, p=0.3),))
        pairs = make_pairs(32)
        fleet = make_fleet(2, net_plan=plan)
        fresh = make_fleet(2, net_plan=plan)
        first = fleet.run(pairs, pairs_per_round=8, collect_results=True)
        assert first.to_dict() == fresh.run(
            pairs, pairs_per_round=8, collect_results=True
        ).to_dict()
        drops = {first.transport.drops}
        for _ in range(6):
            drops.add(
                fleet.run(pairs, pairs_per_round=8).transport.drops
            )
        assert len(drops) > 1, (
            "every run replayed identical drop decisions; begin_run "
            "did not salt the fault RNG"
        )

    def test_journal_refused_over_an_active_plan(self, tmp_path):
        fleet = make_fleet(2, net_plan=kitchen_sink_plan())
        with pytest.raises(ConfigError):
            fleet.run(
                make_pairs(16), pairs_per_round=8, journal=tmp_path / "journal"
            )

    def test_liveness_violation_raises_transport_error(self):
        """Every link drops everything and hedging is off: the round can
        never come home, which is a plan error, not a hang."""
        plan = NetworkFaultPlan(
            drops=(
                LinkDrop(shard_id=0, p=1.0),
                LinkDrop(shard_id=1, p=1.0),
            ),
        )
        fleet = make_fleet(
            2,
            net_plan=plan,
            transport_policy=TransportPolicy(max_redeliveries=4),
        )
        with pytest.raises(TransportError):
            fleet.run(make_pairs(16), pairs_per_round=8)


class TestHedgedStealing:
    PLAN = NetworkFaultPlan(
        seed=1,
        partitions=(Partition(start_s=1e-4, end_s=0.3, shard_ids=(1,)),),
    )

    def run(self, hedge: bool):
        fleet = make_fleet(
            2,
            net_plan=self.PLAN,
            transport_policy=TransportPolicy(hedge=hedge),
        )
        run = fleet.run(make_pairs(48), pairs_per_round=8, collect_results=True)
        return run

    def test_hedged_stealing_beats_timeout_retry_only(self):
        """The ISSUE's acceptance pin: under a long one-shard partition,
        hedged re-dispatch onto the live shard beats riding out the
        partition with timeout-retry, on modeled total_seconds."""
        retry_only = self.run(hedge=False)
        hedged = self.run(hedge=True)
        assert sorted(hedged.results()) == sorted(retry_only.results())
        assert hedged.total_seconds < retry_only.total_seconds
        assert hedged.transport.steals >= 1
        assert retry_only.transport.steals == 0
        # the partitioned shard's rounds all ride out the window under
        # retry-only, so the win is the partition length, roughly
        assert retry_only.total_seconds > 0.3
        assert hedged.total_seconds < 0.3

    def test_steal_race_never_keeps_two_results(self):
        hedged = self.run(hedge=True)
        report = hedged.transport
        # one survivor recorded per round, every extra arrival absorbed
        assert sorted(report.survivors) == list(range(6))
        assert len(report.receipts) == 6
        assert report.duplicates_absorbed >= report.steals - 1

    def test_deterministic_per_seed(self):
        assert self.run(True).to_dict() == self.run(True).to_dict()


class TestHealthDeltasAcrossWorkers:
    def run_with_workers(self, shard_workers: int):
        fleet = make_fleet(
            2,
            shard_workers=shard_workers,
            health_policy=HealthPolicy(
                window=4, failure_threshold=2, cooldown_s=1e9
            ),
            fault_domain="uniform",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            run = fleet.run(
                make_pairs(64),
                pairs_per_round=8,
                collect_results=True,
                fault_plan=FaultPlan(deaths=(DpuDeath(dpu_id=1),)),
                retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=2e-3),
            )
        docs = [h.to_dict(1e6) for h in fleet.shard_healths]
        return sorted(run.results()), docs

    def test_health_docs_identical_at_any_worker_count(self):
        """Satellite 1's pin: the shard_workers > 1 + health restriction
        is lifted — ledger deltas ship home from pool workers, so the
        health docs are byte-identical inline, at one worker, and two."""
        inline_results, inline_docs = self.run_with_workers(0)
        for workers in (1, 2):
            results, docs = self.run_with_workers(workers)
            assert results == inline_results
            assert docs == inline_docs
        # the dead DPU must actually be quarantined in every variant
        assert any(
            b["state"] == "open" for doc in inline_docs
            for b in doc["breakers"].values()
        )


class TestServeIntegration:
    def test_non_fleet_service_refuses_net_plan(self):
        from repro.serve.service import build_service

        with pytest.raises(ConfigError):
            build_service(
                num_dpus=NUM_DPUS,
                max_read_len=32,
                max_edits=4,
                net_plan=kitchen_sink_plan(),
            )

    def test_link_health_degrades_dispatcher_capacity(self):
        """A link partitioned past the end of the run stays quarantined:
        its breaker opens, never sees a success, and the dispatcher's
        backpressure signal reports the fleet below full capacity."""
        fleet = make_fleet(
            2,
            net_plan=NetworkFaultPlan(
                seed=1,
                partitions=(Partition(start_s=0.0, end_s=1e6, shard_ids=(1,)),),
            ),
            transport_policy=TransportPolicy(hedge=True, breaker_cooldown_s=1e9),
        )
        assert fleet.link_healthy_fraction(0.0) == 1.0
        run = fleet.run(make_pairs(48), pairs_per_round=8, collect_results=True)
        # hedging moved the dead link's rounds onto the live shard
        assert run.transport.steals >= 1
        assert fleet.link_healthy_fraction(run.total_seconds) == 0.5
