"""Shared fixtures and hypothesis strategies for the test-suite.

Sequence generation delegates to the library's own generators
(:func:`repro.data.generator.random_sequence` /
:func:`~repro.data.generator.mutate_sequence`) so the test corpus and
the shipped workload generator cannot drift apart.

Hypothesis runs under a registered profile: ``ci`` (the default) is
derandomized so the suite is deterministic in CI; select ``dev`` via
``HYPOTHESIS_PROFILE=dev`` to explore fresh examples locally.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.core.penalties import AffinePenalties, EditPenalties, LinearPenalties
from repro.data.generator import mutate_sequence, random_sequence

DNA = "ACGT"

settings.register_profile("ci", derandomize=True, max_examples=100)
settings.register_profile("dev", max_examples=100)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def make_rng(seed: int = 0) -> random.Random:
    return random.Random(seed)


def random_dna(rng: random.Random, length: int) -> str:
    return random_sequence(length, rng, DNA)


def mutate(rng: random.Random, seq: str, rate: float) -> str:
    """Rate-based wrapper over the library's exact-count mutator."""
    errors = sum(1 for _ in seq if rng.random() < rate)
    return mutate_sequence(seq, errors, rng, DNA)


# -- hypothesis strategies ---------------------------------------------------

dna_seq = st.text(alphabet=DNA, min_size=0, max_size=40)
dna_seq_nonempty = st.text(alphabet=DNA, min_size=1, max_size=40)


@st.composite
def similar_pair(draw, max_len: int = 48, max_edits: int = 6):
    """A (pattern, text) pair where text is pattern with a few edits."""
    pattern = draw(st.text(alphabet=DNA, min_size=0, max_size=max_len))
    n_edits = draw(st.integers(min_value=0, max_value=max_edits))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    text = mutate_sequence(pattern, n_edits, random.Random(seed), DNA)
    return pattern, text


affine_penalties = st.builds(
    AffinePenalties,
    mismatch=st.integers(min_value=1, max_value=8),
    gap_open=st.integers(min_value=0, max_value=10),
    gap_extend=st.integers(min_value=1, max_value=5),
)

linear_penalties = st.builds(
    LinearPenalties,
    mismatch=st.integers(min_value=1, max_value=8),
    indel=st.integers(min_value=1, max_value=5),
)

any_penalties = st.one_of(
    affine_penalties, linear_penalties, st.just(EditPenalties())
)


@pytest.fixture
def rng() -> random.Random:
    return make_rng(1234)
