"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.penalties import AffinePenalties, EditPenalties, LinearPenalties

DNA = "ACGT"


def make_rng(seed: int = 0) -> random.Random:
    return random.Random(seed)


def random_dna(rng: random.Random, length: int) -> str:
    return "".join(rng.choice(DNA) for _ in range(length))


def mutate(rng: random.Random, seq: str, rate: float) -> str:
    """Cheap per-position mutator for fuzz inputs (not the library's)."""
    out = []
    for ch in seq:
        r = rng.random()
        if r < rate / 3:
            continue
        if r < 2 * rate / 3:
            out.append(rng.choice(DNA))
            out.append(ch)
        elif r < rate:
            out.append(rng.choice(DNA))
        else:
            out.append(ch)
    return "".join(out)


# -- hypothesis strategies ---------------------------------------------------

dna_seq = st.text(alphabet=DNA, min_size=0, max_size=40)
dna_seq_nonempty = st.text(alphabet=DNA, min_size=1, max_size=40)


@st.composite
def similar_pair(draw, max_len: int = 48, max_edits: int = 6):
    """A (pattern, text) pair where text is pattern with a few edits."""
    pattern = draw(st.text(alphabet=DNA, min_size=0, max_size=max_len))
    n_edits = draw(st.integers(min_value=0, max_value=max_edits))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = random.Random(seed)
    text = list(pattern)
    for _ in range(n_edits):
        kind = rng.randrange(3)
        if kind == 0 and text:
            pos = rng.randrange(len(text))
            text[pos] = rng.choice(DNA)
        elif kind == 1:
            text.insert(rng.randrange(len(text) + 1), rng.choice(DNA))
        elif text:
            del text[rng.randrange(len(text))]
    return pattern, "".join(text)


affine_penalties = st.builds(
    AffinePenalties,
    mismatch=st.integers(min_value=1, max_value=8),
    gap_open=st.integers(min_value=0, max_value=10),
    gap_extend=st.integers(min_value=1, max_value=5),
)

linear_penalties = st.builds(
    LinearPenalties,
    mismatch=st.integers(min_value=1, max_value=8),
    indel=st.integers(min_value=1, max_value=5),
)

any_penalties = st.one_of(
    affine_penalties, linear_penalties, st.just(EditPenalties())
)


@pytest.fixture
def rng() -> random.Random:
    return make_rng(1234)
