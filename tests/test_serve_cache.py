"""Result-cache correctness: caching is invisible in the output.

The tentpole property (Hypothesis): for an *arbitrary* request stream
with duplicates, the service's responses — scores **and** CIGARs — are
byte-identical with the cache off, with a roomy cache, and with a
pathologically tiny cache (capacity 2, both policies) that evicts
constantly.  Eviction pressure may only change hit/miss/eviction
counters, never a response.

Plus unit coverage of the cache data structure itself: deterministic
LRU / LFU victim selection, key sensitivity to every kernel knob, and
stats accounting.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.penalties import AffinePenalties, EditPenalties
from repro.data.generator import ReadPair
from repro.errors import ConfigError
from repro.pim.kernel import KernelConfig
from repro.serve import (
    AlignRequest,
    ResultCache,
    ServiceConfig,
    build_service,
    kernel_fingerprint,
    result_key,
)

# small pool => heavy duplication => real cache traffic
POOL = (
    ReadPair(pattern="ACGTACGTACGT", text="ACGTACGAACGT"),
    ReadPair(pattern="TTTTCCCCGGGG", text="TTTTCCCAGGGG"),
    ReadPair(pattern="AAAACCCCTTTT", text="AAAACCCCTTTT"),
    ReadPair(pattern="GATTACAGATTA", text="GATTACCGATTA"),
    ReadPair(pattern="CGCGCGCGCGCG", text="CGCGCGAGCGCG"),
    ReadPair(pattern="ACACACACACAC", text="ACACACACACA"),
    ReadPair(pattern="TGCATGCATGCA", text="TGCATGCATGCAA"),
    ReadPair(pattern="GGGGAAAATTTT", text="GGGGAAATTTTT"),
)


def run_stream(picks, cache_pairs, cache_policy="lru"):
    """Serve the pick stream; return [(scores, cigars, cached), ...]."""
    service = build_service(
        num_dpus=2,
        tasklets=2,
        workers=1,
        max_read_len=16,
        max_edits=3,
        config=ServiceConfig(
            max_batch_pairs=4,
            max_wait_s=1e-3,
            cache_pairs=cache_pairs,
            cache_policy=cache_policy,
        ),
        with_telemetry=False,
    )
    futures = []
    for i, chunk in enumerate(picks):
        service.clock.advance(2e-4)
        futures.append(
            service.submit(
                AlignRequest(
                    client="c0",
                    request_id=f"r{i}",
                    pairs=tuple(POOL[p] for p in chunk),
                )
            )
        )
    service.drain()
    out = [
        (f.result().scores, f.result().cigars, f.result().cached) for f in futures
    ]
    return out, service


request_stream = st.lists(
    st.lists(st.integers(min_value=0, max_value=len(POOL) - 1), min_size=1, max_size=3),
    min_size=1,
    max_size=12,
)


class TestCacheTransparency:
    @settings(max_examples=20, deadline=None)
    @given(picks=request_stream)
    def test_cache_on_equals_cache_off(self, picks):
        baseline, _ = run_stream(picks, cache_pairs=0)
        cached, service = run_stream(picks, cache_pairs=64)
        assert [(s, c) for s, c, _ in cached] == [(s, c) for s, c, _ in baseline]
        # with the roomy cache, every repeated pair after its first
        # sighting in an *earlier-dispatched* batch can hit; at minimum
        # the lookup counters add up
        stats = service.cache.stats
        total_pairs = sum(len(chunk) for chunk in picks)
        assert stats.hits + stats.misses == total_pairs
        assert stats.evictions == 0

    @settings(max_examples=20, deadline=None)
    @given(picks=request_stream, policy=st.sampled_from(["lru", "lfu"]))
    def test_tiny_cache_evicts_but_never_changes_results(self, picks, policy):
        baseline, _ = run_stream(picks, cache_pairs=0)
        tiny, service = run_stream(picks, cache_pairs=2, cache_policy=policy)
        assert [(s, c) for s, c, _ in tiny] == [(s, c) for s, c, _ in baseline]
        assert len(service.cache) <= 2
        stats = service.cache.stats
        assert stats.evictions == max(0, stats.inserts - 2)

    def test_cached_flag_marks_only_hits(self):
        # the cache fills at dispatch, so flush (deadline passes on the
        # virtual clock) between submissions to expose hits
        service = build_service(
            num_dpus=2,
            tasklets=2,
            max_read_len=16,
            max_edits=3,
            config=ServiceConfig(max_wait_s=1e-3, cache_pairs=16),
            with_telemetry=False,
        )

        def ask(rid, *pool_ids):
            future = service.submit(
                AlignRequest(
                    client="c0",
                    request_id=rid,
                    pairs=tuple(POOL[p] for p in pool_ids),
                )
            )
            service.clock.advance(2e-3)  # past the deadline: flush
            return future.result().cached

        assert ask("r0", 0) == (False,)
        assert ask("r1", 0) == (True,)
        assert ask("r2", 1) == (False,)
        assert ask("r3", 0, 1) == (True, True)
        assert service.cache.stats.hits == 3


class TestResultKey:
    KC = KernelConfig(penalties=AffinePenalties(), max_read_len=32, max_edits=4)

    def test_key_is_stable_and_pair_sensitive(self):
        assert result_key(POOL[0], self.KC) == result_key(POOL[0], self.KC)
        assert result_key(POOL[0], self.KC) != result_key(POOL[1], self.KC)
        # pattern/text are not interchangeable
        flipped = ReadPair(pattern=POOL[0].text, text=POOL[0].pattern)
        assert result_key(POOL[0], self.KC) != result_key(flipped, self.KC)

    def test_key_tracks_every_kernel_knob(self):
        base = result_key(POOL[0], self.KC)
        variants = [
            KernelConfig(penalties=EditPenalties(), max_read_len=32, max_edits=4),
            KernelConfig(penalties=AffinePenalties(), max_read_len=64, max_edits=4),
            KernelConfig(penalties=AffinePenalties(), max_read_len=32, max_edits=5),
            KernelConfig(
                penalties=AffinePenalties(),
                max_read_len=32,
                max_edits=4,
                traceback=False,
            ),
        ]
        keys = {result_key(POOL[0], kc) for kc in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_fingerprint_avoids_process_salted_hash(self):
        fp = kernel_fingerprint(self.KC)
        assert "AffinePenalties" in fp
        assert str(self.KC.max_read_len) in fp


class TestResultCacheStructure:
    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2, policy="lru")
        cache.put("a", (1, None, (0, 0)))
        cache.put("b", (2, None, (0, 0)))
        assert cache.get("a") == (1, None, (0, 0))  # refresh a
        cache.put("c", (3, None, (0, 0)))  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_lfu_evicts_least_frequent_then_least_recent(self):
        cache = ResultCache(capacity=2, policy="lfu")
        cache.put("a", (1, None, (0, 0)))
        cache.put("b", (2, None, (0, 0)))
        cache.get("a")
        cache.get("a")
        cache.get("b")
        cache.put("c", (3, None, (0, 0)))  # b has fewer uses than a
        assert "b" not in cache
        # now a (freq 2 from gets) vs c (freq 0): c goes first
        cache.put("d", (4, None, (0, 0)))
        assert "c" not in cache
        assert "a" in cache and "d" in cache

    def test_stats_account_for_every_operation(self):
        cache = ResultCache(capacity=1)
        assert cache.get("x") is None
        cache.put("x", (1, None, (0, 0)))
        cache.get("x")
        cache.put("y", (2, None, (0, 0)))
        s = cache.stats
        assert (s.hits, s.misses, s.inserts, s.evictions) == (1, 1, 2, 1)
        assert s.hit_rate() == 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            ResultCache(capacity=0)
        with pytest.raises(ConfigError):
            ResultCache(capacity=4, policy="mru")
