"""Smoke tests keeping every example script runnable.

Each example runs as a subprocess with the repo's interpreter; assertions
check the headline lines so doc rot surfaces as a test failure.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "alignment penalty" in out
        assert "CIGAR" in out

    def test_read_mapping_batch(self):
        out = run_example("read_mapping_batch.py")
        assert "0 mismatches" in out
        assert "throughput" in out

    def test_fig1_quick(self):
        out = run_example("fig1_reproduction.py", "--quick")
        assert "paper vs measured" in out
        assert "PIM-Kernel" in out

    def test_allocator_tradeoff(self):
        out = run_example("allocator_tradeoff.py")
        assert "tasklet admission" in out
        assert "mram" in out

    def test_long_read_alignment(self):
        out = run_example("long_read_alignment.py")
        assert "WFA-Adapt" in out

    def test_semiglobal_mapping(self):
        out = run_example("semiglobal_mapping.py")
        assert "position recovered" in out
        assert "BiWFA cross-check" in out

    def test_metrics_tour(self):
        out = run_example("metrics_tour.py")
        assert "every mode" in out
        assert "= oracle" in out

    def test_pim_mapping(self):
        out = run_example("pim_mapping.py")
        assert "96/96" in out
        assert "PAF round trip" in out

    def test_filter_pipeline(self):
        out = run_example("filter_pipeline.py")
        assert "pre-alignment filtering" in out
        assert "96/96" in out
