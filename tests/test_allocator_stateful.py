"""Stateful property test of the two-level allocator.

A hypothesis rule-based machine drives the allocator through random
sequences of buffer allocations, metadata allocations, mark/release and
resets, checking the invariants the DPU kernel depends on after every
step: 8-byte alignment of every block, no overlap among live blocks,
cursor/high-water consistency, and correct scoped release.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import AllocationError
from repro.pim.allocator import TaskletAllocator

WRAM_CAP = 2048
MRAM_CAP = 8192


class AllocatorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.alloc = TaskletAllocator(
            wram_base=0,
            wram_capacity=WRAM_CAP,
            mram_base=1 << 16,
            mram_capacity=MRAM_CAP,
            metadata_policy="mram",
        )
        self.live_wram: list[tuple[int, int]] = []
        self.live_mram: list[tuple[int, int]] = []
        self.marks: list[int] = []

    # -- rules --------------------------------------------------------

    @rule(nbytes=st.integers(min_value=0, max_value=256))
    def alloc_buffer(self, nbytes):
        try:
            a = self.alloc.alloc_buffer(nbytes)
        except AllocationError:
            # arena genuinely full: verify the claim
            need = max(nbytes, 1)
            need = (need + 7) // 8 * 8
            assert self.alloc.wram.free < need
            return
        self.live_wram.append((a.addr, a.size))

    @rule(nbytes=st.integers(min_value=0, max_value=512))
    def alloc_metadata(self, nbytes):
        try:
            a = self.alloc.alloc_metadata(nbytes)
        except AllocationError:
            need = (max(nbytes, 1) + 7) // 8 * 8
            assert self.alloc.mram.free < need
            return
        self.live_mram.append((a.addr, a.size))

    @rule()
    def take_mark(self):
        self.marks.append(self.alloc.wram_mark())

    @precondition(lambda self: self.marks)
    @rule()
    def release_to_mark(self):
        mark = self.marks.pop()
        self.alloc.wram_release(mark)
        self.live_wram = [
            (addr, size) for addr, size in self.live_wram if addr + size <= mark
        ]
        # any marks taken after this point are now invalid
        self.marks = [m for m in self.marks if m <= mark]

    @rule()
    def reset_metadata(self):
        self.alloc.reset_metadata()
        self.live_mram.clear()

    # -- invariants --------------------------------------------------------

    @invariant()
    def all_blocks_aligned(self):
        for addr, size in self.live_wram + self.live_mram:
            assert addr % 8 == 0
            assert size % 8 == 0

    @invariant()
    def no_overlap(self):
        for blocks in (self.live_wram, self.live_mram):
            spans = sorted(blocks)
            for (a1, s1), (a2, _s2) in zip(spans, spans[1:]):
                assert a1 + s1 <= a2

    @invariant()
    def cursor_consistent(self):
        used = sum(size for _a, size in self.live_wram)
        assert self.alloc.wram.used == used
        assert self.alloc.wram.high_water >= self.alloc.wram.used
        assert sum(size for _a, size in self.live_mram) == self.alloc.mram.used

    @invariant()
    def capacity_respected(self):
        assert self.alloc.wram.used <= WRAM_CAP
        assert self.alloc.mram.used <= MRAM_CAP


TestAllocatorStateful = AllocatorMachine.TestCase
TestAllocatorStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
