"""Stateful property test of the DMA engine against a shadow model.

A hypothesis machine issues random (aligned, sized) DMA transfers and
host writes, mirroring every byte into plain Python dictionaries.  After
every step the simulated memories must agree with the shadow — the
strongest statement that the functional layer moves bytes correctly.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.pim.config import DpuTimingConfig
from repro.pim.dma import DmaEngine
from repro.pim.memory import Mram, Wram

MRAM_SPAN = 4096  # region under test (bank is lazily backed anyway)
WRAM_SPAN = 2048


class DmaMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.mram = Mram()
        self.wram = Wram()
        self.dma = DmaEngine(self.mram, self.wram, DpuTimingConfig())
        self.shadow_mram = bytearray(MRAM_SPAN)
        self.shadow_wram = bytearray(WRAM_SPAN)
        self.transfers = 0

    @rule(
        addr=st.integers(0, MRAM_SPAN // 8 - 1),
        data=st.binary(min_size=8, max_size=8),
    )
    def host_write_mram(self, addr, data):
        a = addr * 8
        self.mram.host_write(a, data)
        self.shadow_mram[a : a + 8] = data

    @rule(
        addr=st.integers(0, WRAM_SPAN // 8 - 1),
        data=st.binary(min_size=8, max_size=8),
    )
    def tasklet_write_wram(self, addr, data):
        a = addr * 8
        self.wram.write(a, data)
        self.shadow_wram[a : a + 8] = data

    @rule(
        m=st.integers(0, MRAM_SPAN // 8 - 1),
        w=st.integers(0, WRAM_SPAN // 8 - 1),
        beats=st.integers(1, 8),
    )
    def dma_read(self, m, w, beats):
        maddr, waddr = m * 8, w * 8
        size = beats * 8
        size = min(size, MRAM_SPAN - maddr, WRAM_SPAN - waddr)
        if size < 8:
            return
        self.dma.read(maddr, waddr, size)
        self.shadow_wram[waddr : waddr + size] = self.shadow_mram[
            maddr : maddr + size
        ]
        self.transfers += 1

    @rule(
        m=st.integers(0, MRAM_SPAN // 8 - 1),
        w=st.integers(0, WRAM_SPAN // 8 - 1),
        beats=st.integers(1, 8),
    )
    def dma_write(self, m, w, beats):
        maddr, waddr = m * 8, w * 8
        size = beats * 8
        size = min(size, MRAM_SPAN - maddr, WRAM_SPAN - waddr)
        if size < 8:
            return
        self.dma.write(waddr, maddr, size)
        self.shadow_mram[maddr : maddr + size] = self.shadow_wram[
            waddr : waddr + size
        ]
        self.transfers += 1

    @invariant()
    def memories_match_shadow(self):
        assert self.mram.read(0, MRAM_SPAN) == bytes(self.shadow_mram)
        assert self.wram.read(0, WRAM_SPAN) == bytes(self.shadow_wram)

    @invariant()
    def accounting_consistent(self):
        assert self.dma.transfers == self.transfers
        assert self.dma.cycles >= self.transfers * DpuTimingConfig().dma_setup_cycles


TestDmaStateful = DmaMachine.TestCase
TestDmaStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
