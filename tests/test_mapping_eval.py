"""Tests for mapping-accuracy evaluation."""

import pytest

from repro.analysis.mapping_eval import evaluate_mappings
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties
from repro.core.span import AlignmentSpan
from repro.data.paf import PafRecord, from_alignment
from repro.data.simulator import ReferenceSampler, SampledRead
from repro.errors import ConfigError

PEN = AffinePenalties(4, 6, 2)


def record(target_start: int, strand: str = "+") -> PafRecord:
    return PafRecord(
        query_name="r",
        query_len=50,
        query_start=0,
        query_end=50,
        strand=strand,
        target_name="ref",
        target_len=1000,
        target_start=target_start,
        target_end=target_start + 50,
        matches=50,
        alignment_len=50,
    )


def read(position: int, reverse: bool = False) -> SampledRead:
    return SampledRead(sequence="A" * 50, position=position, reverse=reverse, errors=0)


class TestScoring:
    def test_exact_position(self):
        ev = evaluate_mappings([record(100)], [read(100)])
        assert ev.correct == 1 and ev.accuracy == 1.0

    def test_within_tolerance(self):
        ev = evaluate_mappings([record(103)], [read(100)], tolerance=5)
        assert ev.correct == 1

    def test_wrong_position(self):
        ev = evaluate_mappings([record(200)], [read(100)], tolerance=5)
        assert ev.wrong_position == 1 and ev.correct == 0

    def test_wrong_strand(self):
        ev = evaluate_mappings([record(100, "-")], [read(100, reverse=False)])
        assert ev.wrong_strand == 1

    def test_window_offsets_translate_coordinates(self):
        # read at reference position 500; window started at 480; the
        # aligner reports target_start 20 within the window
        ev = evaluate_mappings(
            [record(20)], [read(500)], window_offsets=[480]
        )
        assert ev.correct == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            evaluate_mappings([record(0)], [])
        with pytest.raises(ConfigError):
            evaluate_mappings([record(0)], [read(0)], tolerance=-1)
        with pytest.raises(ConfigError):
            evaluate_mappings([record(0)], [read(0)], window_offsets=[1, 2])

    def test_report(self):
        text = evaluate_mappings([record(100)], [read(100)]).report()
        assert "100.0%" in text


class TestEndToEnd:
    def test_simulated_mapping_accuracy(self):
        sampler = ReferenceSampler(
            seed=44, reference_length=6000, read_length=64, error_rate=0.03
        )
        aligner = WavefrontAligner(PEN, span=AlignmentSpan.semiglobal())
        reads = sampler.reads(30)
        records = []
        window_starts = []
        for i, rd in enumerate(reads):
            query = sampler.oriented_query(rd)
            window, offset = rd.window(sampler.reference, flank=20)
            res = aligner.align(query, window)
            records.append(
                from_alignment(
                    res, f"read{i}", "ref", strand="-" if rd.reverse else "+"
                )
            )
            window_starts.append(rd.position - offset)
        ev = evaluate_mappings(
            records, reads, tolerance=sampler.edit_budget, window_offsets=window_starts
        )
        assert ev.accuracy >= 0.9
        assert ev.wrong_strand == 0
