"""End-to-end integration tests across subsystem boundaries.

These exercise the full pipelines a user would run: dataset -> file ->
PIM system -> results -> verification against independent baselines, and
CPU-vs-PIM consistency.
"""

import pytest

from repro.baselines.bitparallel import levenshtein_dp
from repro.baselines.gotoh import gotoh_align
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.cpu.runner import CpuRunner
from repro.data.datasets import DatasetSpec
from repro.data.generator import ReadPairGenerator
from repro.data.seqio import read_seq, write_seq
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem

PEN = AffinePenalties(4, 6, 2)


class TestFileToPimPipeline:
    def test_seq_file_through_pim_system(self, tmp_path):
        """Generate -> write .seq -> read back -> PIM align -> verify."""
        spec = DatasetSpec(num_pairs=40, length=80, error_rate=0.04, seed=11)
        path = tmp_path / "workload.seq"
        write_seq(path, spec.stream())
        pairs = read_seq(path)
        assert len(pairs) == 40

        cfg = PimSystemConfig(
            num_dpus=8, num_ranks=1, tasklets=4, num_simulated_dpus=8
        )
        kc = KernelConfig(penalties=PEN, max_read_len=80, max_edits=4)
        res = PimSystem(cfg, kc).align(pairs)
        assert res.pairs_simulated == 40

        for idx, score, cigar in res.results:
            pair = pairs[idx]
            g_score, _ = gotoh_align(pair.pattern, pair.text, PEN)
            assert score == g_score
            cigar.validate(pair.pattern, pair.text)
            assert cigar.score(PEN) == score


class TestCpuPimConsistency:
    def test_same_scores_on_both_platforms(self):
        """Functional equivalence: the PIM port changes nothing semantic
        (the paper: 'we apply no optimizations to the WFA PIM
        implementation compared to the original')."""
        pairs = ReadPairGenerator(length=70, error_rate=0.05, seed=12).pairs(20)
        cpu_results = CpuRunner(PEN).align_all(pairs)

        cfg = PimSystemConfig(num_dpus=4, num_ranks=1, tasklets=2, num_simulated_dpus=4)
        kc = KernelConfig(penalties=PEN, max_read_len=70, max_edits=4)
        pim = PimSystem(cfg, kc).align(pairs)

        pim_scores = {idx: score for idx, score, _ in pim.results}
        for i, cpu_res in enumerate(cpu_results):
            assert pim_scores[i] == cpu_res.score

    def test_edit_metric_cross_platform_and_oracle(self):
        pairs = ReadPairGenerator(length=60, error_rate=0.05, seed=13).pairs(12)
        cfg = PimSystemConfig(num_dpus=2, num_ranks=1, tasklets=2, num_simulated_dpus=2)
        kc = KernelConfig(penalties=EditPenalties(), max_read_len=60, max_edits=3)
        res = PimSystem(cfg, kc).align(pairs)
        for idx, score, _ in res.results:
            assert score == levenshtein_dp(pairs[idx].pattern, pairs[idx].text)


class TestWorkloadBudgets:
    def test_whole_dataset_within_kernel_budget(self):
        """Every generated pair must fit the kernel's static score bound —
        the admission contract between generator and kernel."""
        spec = DatasetSpec(num_pairs=200, length=100, error_rate=0.04, seed=14)
        kc = KernelConfig(penalties=PEN, max_read_len=100, max_edits=4)
        aligner = WavefrontAligner(PEN)
        for pair in spec.stream():
            assert aligner.score(pair.pattern, pair.text) <= kc.max_score
            assert max(len(pair.pattern), len(pair.text)) <= kc.max_seq_len


class TestDeterminism:
    def test_pim_run_fully_deterministic(self):
        spec = DatasetSpec(num_pairs=500, length=60, error_rate=0.03, seed=15)

        def run():
            cfg = PimSystemConfig(
                num_dpus=16, num_ranks=1, tasklets=4, num_simulated_dpus=2
            )
            kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=2)
            return PimSystem(cfg, kc).model_run(spec, sample_pairs_per_dpu=8)

        a, b = run(), run()
        assert a.kernel_seconds == b.kernel_seconds
        assert a.total_seconds == b.total_seconds
        assert a.bytes_in == b.bytes_in

    def test_cpu_measurement_deterministic(self):
        spec = DatasetSpec(num_pairs=30, length=60, error_rate=0.03, seed=16)
        m1 = CpuRunner(PEN).measure(spec.sample(30))
        m2 = CpuRunner(PEN).measure(spec.sample(30))
        assert m1.counters.cells_computed == m2.counters.cells_computed
        assert m1.scores == m2.scores
