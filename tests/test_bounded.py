"""Tests for the bounded edit-distance filter primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bitparallel import levenshtein_dp
from repro.baselines.bounded import bounded_edit_distance
from repro.errors import AlignmentError

from conftest import dna_seq, similar_pair


class TestKnownCases:
    def test_classic(self):
        assert bounded_edit_distance("kitten", "sitting", 3) == 3
        assert bounded_edit_distance("kitten", "sitting", 5) == 3
        assert bounded_edit_distance("kitten", "sitting", 2) is None

    def test_identical(self):
        assert bounded_edit_distance("ACGT", "ACGT", 0) == 0

    def test_empty(self):
        assert bounded_edit_distance("", "", 0) == 0
        assert bounded_edit_distance("", "AC", 2) == 2
        assert bounded_edit_distance("", "AC", 1) is None

    def test_length_difference_shortcut(self):
        # |n - m| > k rejects without any DP work
        assert bounded_edit_distance("A" * 10, "A" * 20, 5) is None

    def test_negative_threshold(self):
        with pytest.raises(AlignmentError):
            bounded_edit_distance("A", "A", -1)


class TestOracle:
    @settings(max_examples=100, deadline=None)
    @given(a=dna_seq, b=dna_seq, k=st.integers(0, 12))
    def test_matches_levenshtein(self, a, b, k):
        truth = levenshtein_dp(a, b)
        got = bounded_edit_distance(a, b, k)
        if truth <= k:
            assert got == truth
        else:
            assert got is None

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair(max_len=40, max_edits=6))
    def test_similar_pairs_pass_their_budget(self, pair):
        p, t = pair
        truth = levenshtein_dp(p, t)
        assert bounded_edit_distance(p, t, truth) == truth
        if truth > 0:
            assert bounded_edit_distance(p, t, truth - 1) is None
