"""Fleet-health ledger, circuit breakers, quarantine (repro.pim.health)."""

from __future__ import annotations

import warnings

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.penalties import EditPenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError, DegradedCapacity
from repro.obs.metrics import MetricsRegistry
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan, RetryPolicy
from repro.pim.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FleetHealth,
    HealthPolicy,
)
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem

NUM_DPUS = 4


def small_system(fault_plan=None, retry_policy=None) -> PimSystem:
    return PimSystem(
        PimSystemConfig(
            num_dpus=NUM_DPUS, num_ranks=1, tasklets=4, num_simulated_dpus=NUM_DPUS
        ),
        kernel_config=KernelConfig(
            penalties=EditPenalties(), max_read_len=40, max_edits=4
        ),
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )


def workload(n: int = 40):
    return ReadPairGenerator(length=32, error_rate=0.05, seed=7).pairs(n)


class TestHealthPolicy:
    def test_defaults_validate(self):
        HealthPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"failure_threshold": 0},
            {"window": 4, "failure_threshold": 5},
            {"cooldown_s": -1.0},
            {"probe_successes": 0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            HealthPolicy(**kwargs)


class TestCircuitBreaker:
    def policy(self, **kw) -> HealthPolicy:
        base = dict(window=4, failure_threshold=2, cooldown_s=1.0, probe_successes=2)
        base.update(kw)
        return HealthPolicy(**base)

    def test_lifecycle_closed_open_half_open_closed(self):
        br = CircuitBreaker(self.policy())
        assert br.state(0.0) == CLOSED
        br.record_failure(0.0)
        assert br.state(0.0) == CLOSED
        br.record_failure(0.1)
        assert br.state(0.1) == OPEN
        assert not br.allows(0.5)  # still cooling down
        assert br.state(1.1) == HALF_OPEN  # lazy promotion after cooldown
        br.record_success(1.2)
        assert br.state(1.2) == HALF_OPEN  # one probe of the two required
        br.record_success(1.3)
        assert br.state(1.3) == CLOSED
        assert br.times_opened == 1

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        br = CircuitBreaker(self.policy())
        br.record_failure(0.0)
        br.record_failure(0.0)
        assert br.state(1.0) == HALF_OPEN
        br.record_failure(1.0)
        assert br.state(1.5) == OPEN  # cooldown restarted at t=1.0
        assert br.state(2.0) == HALF_OPEN
        assert br.times_opened == 2

    def test_sliding_window_forgets_old_failures(self):
        # threshold 2 in a window of 4: two failures separated by four
        # successes never coexist in the window, so the breaker holds
        br = CircuitBreaker(self.policy())
        for _ in range(3):
            br.record_failure(0.0)
            for _ in range(4):
                br.record_success(0.0)
        assert br.state(0.0) == CLOSED
        assert br.failure_rate <= 0.25

    def test_to_dict_snapshot(self):
        br = CircuitBreaker(self.policy())
        br.record_failure(0.0)
        doc = br.to_dict(0.0)
        assert doc["state"] == CLOSED
        assert doc["failures"] == 1 and doc["times_opened"] == 0
        assert doc["failure_rate"] == 1.0


class TestFleetHealth:
    def test_quarantine_and_metrics(self):
        registry = MetricsRegistry()
        fleet = FleetHealth(
            NUM_DPUS,
            policy=HealthPolicy(window=4, failure_threshold=1, cooldown_s=10.0),
            registry=registry,
        )
        fleet.record_failure(2, now=0.0)
        assert fleet.quarantined(0.0) == (2,)
        assert fleet.available(0.0) == (0, 1, 3)
        assert fleet.healthy_fraction(0.0) == pytest.approx(0.75)
        with pytest.warns(DegradedCapacity):
            active = fleet.plan_round(now=0.0)
        assert active == (0, 1, 3)
        assert registry.gauge("pim_dpus_quarantined").value() == 1
        assert registry.gauge("pim_healthy_capacity").value() == pytest.approx(0.75)
        assert (
            registry.counter("pim_breaker_transitions_total").value(to=OPEN) == 1
        )

    def test_total_quarantine_forces_probe_round(self):
        fleet = FleetHealth(
            2, policy=HealthPolicy(window=2, failure_threshold=1, cooldown_s=10.0)
        )
        fleet.record_failure(0, now=0.0)
        fleet.record_failure(1, now=0.0)
        with pytest.warns(DegradedCapacity, match="full-fleet probe"):
            assert fleet.plan_round(now=0.0) == (0, 1)

    def test_ledger_clock_is_monotone(self):
        fleet = FleetHealth(2)
        fleet.advance(5.0)
        fleet.advance(1.0)  # going backwards is a no-op
        assert fleet.now == 5.0

    def test_observe_report_attributes_physical_placements(self):
        # a requeued job: failures on the original placement, success on
        # the spare — the ledger must blame the right physical DPU
        plan = FaultPlan(deaths=(DpuDeath(dpu_id=1),))
        run = small_system().align(workload(16), fault_plan=plan)
        fleet = FleetHealth(
            NUM_DPUS, policy=HealthPolicy(window=4, failure_threshold=2)
        )
        fleet.observe_report(run.recovery, now=0.0)
        states = fleet.states(0.0)
        assert states[1] == OPEN
        assert all(states[d] == CLOSED for d in (0, 2, 3))
        assert fleet.breakers[run.recovery.records[1].final_placement].successes >= 1

    def test_to_dict_schema(self):
        fleet = FleetHealth(2)
        doc = fleet.to_dict(0.0)
        assert doc["schema"] == "repro.pim.health/v1"
        assert doc["available"] == [0, 1]
        assert set(doc["breakers"]) == {"0", "1"}


class TestSchedulerQuarantine:
    def run_with(self, health, pairs, plan, policy):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            return BatchScheduler(small_system()).run(
                pairs,
                pairs_per_round=10,
                collect_results=True,
                fault_plan=plan,
                retry_policy=policy,
                health=health,
            )

    def test_breaker_reduces_total_seconds_vs_retry_only(self):
        """Acceptance pin: with one always-dead DPU, quarantining it is
        measurably cheaper than paying the retry tax every round."""
        pairs = workload(40)
        plan = FaultPlan(deaths=(DpuDeath(dpu_id=1),))
        policy = RetryPolicy(max_attempts=2, backoff_base_s=2e-3)
        retry_only = self.run_with(None, pairs, plan, policy)
        health = FleetHealth(
            NUM_DPUS,
            policy=HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9),
        )
        with_breaker = self.run_with(health, pairs, plan, policy)
        assert health.states()[1] == OPEN
        # same answers either way...
        flat = lambda run: sorted(
            (i + start, s, str(c))
            for rnd, start in zip(
                run.per_round,
                [0, 10, 20, 30],
            )
            for i, s, c in rnd.results
        )
        assert flat(with_breaker) == flat(retry_only)
        # ...but the quarantined run stops paying recovery overhead
        assert with_breaker.recovery_seconds < retry_only.recovery_seconds
        assert with_breaker.total_seconds < retry_only.total_seconds

    def test_quarantined_rounds_report_active_dpus(self):
        pairs = workload(30)
        plan = FaultPlan(deaths=(DpuDeath(dpu_id=2),))
        policy = RetryPolicy(max_attempts=2, backoff_base_s=1e-3)
        health = FleetHealth(
            NUM_DPUS,
            policy=HealthPolicy(window=4, failure_threshold=2, cooldown_s=1e9),
        )
        run = self.run_with(health, pairs, plan, policy)
        # once the breaker opens, later rounds exclude DPU 2
        assert run.per_round[-1].active_dpus is not None
        assert 2 not in run.per_round[-1].active_dpus
        # no pair lost despite the shrunken fleet
        got = sorted(
            i + start
            for rnd, start in zip(run.per_round, [0, 10, 20])
            for i, _, _ in rnd.results
        )
        assert got == list(range(30))


class BreakerMachine(RuleBasedStateMachine):
    """Arbitrary outcome/time sequences keep the breaker sane.

    Core liveness invariant: a breaker is never stranded — whatever
    happened before, cooldown expiry followed by enough successful
    probes always closes it.
    """

    def __init__(self) -> None:
        super().__init__()
        self.policy = HealthPolicy(
            window=4, failure_threshold=2, cooldown_s=1.0, probe_successes=2
        )
        self.breaker = CircuitBreaker(self.policy)
        self.now = 0.0

    @rule(dt=st.floats(min_value=0.0, max_value=3.0))
    def advance(self, dt: float) -> None:
        self.now += dt

    @rule()
    def fail(self) -> None:
        self.breaker.record_failure(self.now)

    @rule()
    def succeed(self) -> None:
        self.breaker.record_success(self.now)

    @precondition(lambda self: self.breaker.state(self.now) == OPEN)
    @rule()
    def rehabilitate(self) -> None:
        """From OPEN, waiting out the cooldown and probing always
        closes the breaker — no DPU is stranded open forever."""
        self.now += self.policy.cooldown_s
        assert self.breaker.state(self.now) == HALF_OPEN
        for _ in range(self.policy.probe_successes):
            self.breaker.record_success(self.now)
        assert self.breaker.state(self.now) == CLOSED

    @invariant()
    def state_is_valid(self) -> None:
        state = self.breaker.state(self.now)
        assert state in (CLOSED, OPEN, HALF_OPEN)
        assert self.breaker.allows(self.now) == (state != OPEN)
        assert 0.0 <= self.breaker.failure_rate <= 1.0

    @invariant()
    def open_implies_recent_trip(self) -> None:
        # an OPEN breaker always becomes available again by cooldown_s
        if self.breaker.state(self.now) == OPEN:
            future = self.now + self.policy.cooldown_s
            probe = CircuitBreaker(self.policy)
            probe.__dict__.update(
                {
                    k: (v.copy() if hasattr(v, "copy") else v)
                    for k, v in self.breaker.__dict__.items()
                    if k != "policy"
                }
            )
            assert probe.state(future) == HALF_OPEN


BreakerMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestBreakerNeverStranded = BreakerMachine.TestCase


class TestBenchResilienceArtifact:
    def test_bench_resilience_artifact_schema(self, tmp_path):
        import importlib.util
        import json
        from pathlib import Path

        bench_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_resilience.py"
        )
        spec = importlib.util.spec_from_file_location(
            "bench_resilience", bench_path
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            retry_only, with_breaker, health = mod.run_resilience(
                num_pairs=32, pairs_per_round=8, length=24, seed=11
            )
        out = tmp_path / "BENCH_resilience.json"
        mod.write_resilience_artifact(
            retry_only,
            with_breaker,
            health,
            num_pairs=32,
            pairs_per_round=8,
            length=24,
            seed=11,
            path=out,
        )
        record = json.loads(out.read_text())
        assert record["schema"] == "repro.bench.artifact/v1"
        assert record["benchmark"] == "BENCH_resilience"
        assert record["seed"] == record["config"]["seed"] == 11
        assert record["config"]["num_pairs"] == 32
        assert len(record["config_fingerprint"]) == 16
        assert record["identical"] is True
        assert record["retry_only_seconds"] > record["breaker_seconds"] > 0
        assert record["faults_seen"] >= 1
