"""Tests for the structured event log and its cross-layer publishers."""

import pytest

from repro.errors import ConfigError, TelemetryError
from repro.obs import RunTelemetry, validate_event_log, write_events_jsonl
from repro.obs.events import (
    BREAKER,
    CAMPAIGN_CELL,
    CAMPAIGN_DONE,
    DEADLINE,
    EVENT_KINDS,
    EVENTS_SCHEMA,
    FALLBACK,
    JOURNAL_REPLAY,
    NET_DROP,
    NET_PARTITION,
    NET_REDELIVER,
    REBALANCE,
    SHED,
    SLO_ALERT,
    STEAL,
    WATCHDOG,
    EventLog,
)


class TestPublish:
    def test_sequence_and_sorted_attrs(self):
        log = EventLog()
        first = log.publish(BREAKER, 0.5, dpu=3, old="closed", new="open")
        second = log.publish(WATCHDOG, 0.7, round=1, dpu=2)
        assert (first.seq, second.seq) == (0, 1)
        assert [k for k, _ in first.attrs] == ["dpu", "new", "old"]
        assert second.to_dict() == {
            "record": "event",
            "seq": 1,
            "t_s": 0.7,
            "kind": "watchdog",
            "attrs": {"dpu": 2, "round": 1},
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError, match="unknown event kind"):
            EventLog().publish("reboot", 0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(TelemetryError, match=">= 0"):
            EventLog().publish(BREAKER, -1.0)

    def test_non_scalar_attr_rejected(self):
        with pytest.raises(TelemetryError, match="JSON scalar"):
            EventLog().publish(BREAKER, 0.0, dpus=[1, 2])

    def test_vocabulary_is_closed(self):
        assert EVENT_KINDS == {
            BREAKER, WATCHDOG, JOURNAL_REPLAY, FALLBACK, SHED, DEADLINE,
            SLO_ALERT, REBALANCE, CAMPAIGN_CELL, CAMPAIGN_DONE,
            NET_DROP, NET_REDELIVER, NET_PARTITION, STEAL,
        }


class TestBounds:
    def test_capacity_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.publish(SHED, float(i), request=f"r{i}")
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.seq for e in log.events()] == [2, 3, 4]  # seqs keep rising
        assert log.header()["dropped"] == 2

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            EventLog(capacity=0)


class TestQueries:
    def _populated(self):
        log = EventLog()
        log.publish(BREAKER, 0.1, dpu=1, old="closed", new="open")
        log.publish(FALLBACK, 0.2, state="active", healthy_fraction=0.5)
        log.publish(BREAKER, 0.3, dpu=1, old="open", new="half_open")
        return log

    def test_filter_by_kind(self):
        log = self._populated()
        assert [e.t_s for e in log.events(BREAKER)] == [0.1, 0.3]
        assert log.events(SHED) == []
        with pytest.raises(TelemetryError):
            log.events("bogus")

    def test_kinds_seen_sorted(self):
        assert self._populated().kinds_seen() == {"breaker": 2, "fallback": 1}


class TestDocuments:
    def test_roundtrip_validates(self, tmp_path):
        log = EventLog()
        log.publish(JOURNAL_REPLAY, 0.0, round=0, pairs=24)
        log.publish(DEADLINE, 1.5, request="r1", deadline_s=1.0)
        path = tmp_path / "events.jsonl"
        log.write(path)
        header = validate_event_log(str(path))
        assert header["schema"] == EVENTS_SCHEMA
        assert header["events"] == 2
        assert validate_event_log(log.to_records()) == header

    def test_deterministic_jsonl(self):
        def build():
            log = EventLog()
            log.publish(SLO_ALERT, 0.02, state="fire", window_s=0.02, burn=11.0)
            log.publish(SLO_ALERT, 0.03, state="resolve", window_s=0.02)
            return log.to_jsonl()

        assert build() == build()

    @pytest.mark.parametrize(
        "records, match",
        [
            ([], "at least a header"),
            ([{"record": "header", "schema": "bogus/v0", "events": 0}],
             "bad header"),
            ([{"record": "header", "schema": EVENTS_SCHEMA, "events": 2}],
             "header says"),
            ([{"record": "header", "schema": EVENTS_SCHEMA, "events": 1},
              {"record": "event", "kind": "bogus", "seq": 0, "t_s": 0.0,
               "attrs": {}}],
             "unknown kind"),
            ([{"record": "header", "schema": EVENTS_SCHEMA, "events": 2},
              {"record": "event", "kind": "shed", "seq": 1, "t_s": 0.0,
               "attrs": {}},
              {"record": "event", "kind": "shed", "seq": 1, "t_s": 0.0,
               "attrs": {}}],
             "does not increase"),
            ([{"record": "header", "schema": EVENTS_SCHEMA, "events": 1},
              {"record": "event", "kind": "shed", "seq": 0, "t_s": -1.0,
               "attrs": {}}],
             "t_s"),
            ([{"record": "header", "schema": EVENTS_SCHEMA, "events": 1},
              {"record": "event", "kind": "shed", "seq": 0, "t_s": 0.0,
               "attrs": []}],
             "attrs"),
        ],
    )
    def test_validation_rejects(self, records, match):
        with pytest.raises(TelemetryError, match=match):
            validate_event_log(records)

    def test_write_events_jsonl_helper(self, tmp_path):
        tel = RunTelemetry()
        tel.events.publish(BREAKER, 0.1, dpu=0, old="closed", new="open")
        path = tmp_path / "ev.jsonl"
        write_events_jsonl(str(path), tel)
        assert validate_event_log(str(path))["events"] == 1


class TestLayerPublishers:
    """Each resilience layer publishes its typed events."""

    def test_fleet_health_publishes_breaker_transitions(self):
        from repro.pim.health import FleetHealth, HealthPolicy

        log = EventLog()
        health = FleetHealth(
            4,
            policy=HealthPolicy(window=4, failure_threshold=2, cooldown_s=1.0),
            events=log,
        )
        health.record_failure(1, now=0.1)
        health.record_failure(1, now=0.2)  # trips open
        (ev,) = log.events(BREAKER)
        assert dict(ev.attrs) == {"dpu": 1, "old": "closed", "new": "open"}
        assert ev.t_s == 0.2

    def test_scheduler_publishes_watchdog_and_journal_replay(self, tmp_path):
        from repro.core.penalties import AffinePenalties
        from repro.data.generator import ReadPairGenerator
        from repro.pim.config import PimSystemConfig
        from repro.pim.faults import FaultPlan, TaskletStall
        from repro.pim.kernel import KernelConfig
        from repro.pim.scheduler import BatchScheduler
        from repro.pim.system import PimSystem

        def make_scheduler():
            tel = RunTelemetry()
            system = PimSystem(
                PimSystemConfig(
                    num_dpus=4, num_ranks=1, tasklets=2, num_simulated_dpus=4
                ),
                KernelConfig(
                    penalties=AffinePenalties(4, 6, 2),
                    max_read_len=50,
                    max_edits=2,
                ),
                telemetry=tel,
            )
            return BatchScheduler(system), tel

        pairs = ReadPairGenerator(length=50, error_rate=0.02, seed=3).pairs(24)
        plan = FaultPlan(stalls=(TaskletStall(dpu_id=2),))

        scheduler, tel = make_scheduler()
        journal = tmp_path / "run.jsonl"
        scheduler.run(
            pairs, pairs_per_round=12, fault_plan=plan, journal=str(journal)
        )
        trips = tel.events.events(WATCHDOG)
        assert trips and all(
            dict(e.attrs)["dpu"] == 2 for e in trips
        )

        resumed, tel2 = make_scheduler()
        run = resumed.resume_run(
            str(journal), pairs, pairs_per_round=12, fault_plan=plan
        )
        assert run.rounds_replayed == 2
        replays = tel2.events.events(JOURNAL_REPLAY)
        assert [dict(e.attrs)["round"] for e in replays] == [0, 1]

    def test_service_publishes_shed_and_deadline(self):
        from repro.data.generator import ReadPair
        from repro.serve import AlignRequest, ServiceConfig, build_service
        from repro.serve.clock import VirtualClock

        service = build_service(
            num_dpus=2,
            tasklets=2,
            max_read_len=16,
            clock=VirtualClock(),
            config=ServiceConfig(max_batch_pairs=4, max_wait_s=1e-3),
        )
        pair = ReadPair(pattern="ACGTACGT", text="ACGTACGT")
        # a deadline strictly in the past is decided at submit time
        service.clock.advance_to(1.0)
        future = service.submit(
            AlignRequest(
                client="c", request_id="late", pairs=(pair,), deadline_s=0.5
            )
        )
        service.drain()
        with pytest.raises(Exception):
            future.result()
        (ev,) = service.telemetry.events.events(DEADLINE)
        assert dict(ev.attrs)["request"] == "late"

    def test_dispatcher_publishes_fallback_edges(self):
        """Covered end-to-end in test_obs_slo.py's chaos drill; here just
        pin that the kind is wired at all via the drill helper."""
        from repro.obs.events import FALLBACK as kind

        assert kind in EVENT_KINDS
