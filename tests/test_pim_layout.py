"""Tests for the MRAM data layout and record packing."""

import pytest

from repro.core.cigar import Cigar
from repro.data.generator import ReadPair
from repro.errors import LayoutError
from repro.pim.layout import HEADER_BYTES, MramLayout
from repro.pim.memory import Mram


def make_layout(**kw) -> MramLayout:
    defaults = dict(
        num_pairs=10,
        max_pattern_len=100,
        max_text_len=100,
        max_cigar_ops=11,
        tasklets=4,
        metadata_bytes_per_tasklet=1024,
    )
    defaults.update(kw)
    return MramLayout.plan(**defaults)


class TestGeometry:
    def test_record_sizes_are_8_aligned(self):
        layout = make_layout()
        assert layout.input_record_size % 8 == 0
        assert layout.result_record_size % 8 == 0
        assert layout.input_record_size == 8 + 104 + 104

    def test_regions_do_not_overlap(self):
        layout = make_layout()
        assert layout.input_base == HEADER_BYTES
        assert layout.output_base == layout.input_base + 10 * layout.input_record_size
        assert layout.metadata_base == (
            layout.output_base + 10 * layout.result_record_size
        )
        assert layout.total_bytes == layout.metadata_base + 4 * 1024

    def test_addresses(self):
        layout = make_layout()
        assert layout.input_addr(0) == layout.input_base
        assert layout.input_addr(3) == layout.input_base + 3 * layout.input_record_size
        assert layout.result_addr(9) < layout.metadata_base
        assert layout.metadata_addr(0) == layout.metadata_base
        assert layout.metadata_addr(3) == layout.metadata_base + 3 * 1024

    def test_index_bounds(self):
        layout = make_layout()
        with pytest.raises(LayoutError):
            layout.input_addr(10)
        with pytest.raises(LayoutError):
            layout.result_addr(-1)
        with pytest.raises(LayoutError):
            layout.metadata_addr(4)

    def test_overflow_rejected(self):
        with pytest.raises(LayoutError, match="MRAM"):
            make_layout(num_pairs=10_000_000)

    def test_plan_validation(self):
        with pytest.raises(LayoutError):
            make_layout(num_pairs=-1)
        with pytest.raises(LayoutError):
            make_layout(max_cigar_ops=0)
        with pytest.raises(LayoutError):
            make_layout(tasklets=0)


class TestHeader:
    def test_header_roundtrip(self):
        layout = make_layout()
        mram = Mram()
        layout.write_header(mram)
        parsed = MramLayout.read_header(mram)
        assert parsed == layout

    def test_bad_magic_rejected(self):
        mram = Mram()
        mram.write(0, b"\x00" * HEADER_BYTES)
        with pytest.raises(LayoutError, match="magic"):
            MramLayout.read_header(mram)


class TestPairRecords:
    def test_roundtrip(self):
        layout = make_layout()
        pair = ReadPair(pattern="ACGT" * 20, text="TGCA" * 24)
        rec = layout.pack_pair(pair)
        assert len(rec) == layout.input_record_size
        out = layout.unpack_pair(rec)
        assert out.pattern == pair.pattern
        assert out.text == pair.text

    def test_empty_sequences(self):
        layout = make_layout()
        out = layout.unpack_pair(layout.pack_pair(ReadPair(pattern="", text="")))
        assert out.pattern == "" and out.text == ""

    def test_oversized_rejected(self):
        layout = make_layout(max_pattern_len=10, max_text_len=10)
        with pytest.raises(LayoutError):
            layout.pack_pair(ReadPair(pattern="A" * 20, text="A"))
        with pytest.raises(LayoutError):
            layout.pack_pair(ReadPair(pattern="A", text="A" * 20))

    def test_unpack_wrong_size(self):
        layout = make_layout()
        with pytest.raises(LayoutError):
            layout.unpack_pair(b"\x00" * 8)


class TestResultRecords:
    def test_roundtrip_with_cigar(self):
        layout = make_layout()
        cigar = Cigar.from_string("48M1X50M1I")
        rec = layout.pack_result(12, cigar)
        score, out = layout.unpack_result(rec)
        assert score == 12
        assert out == cigar

    def test_score_only(self):
        layout = make_layout()
        score, cigar = layout.unpack_result(layout.pack_result(-3, None))
        assert score == -3
        assert cigar is None

    def test_empty_cigar_distinct_from_none(self):
        layout = make_layout()
        score, cigar = layout.unpack_result(layout.pack_result(0, Cigar()))
        assert cigar is not None
        assert cigar.columns() == 0

    def test_too_many_ops_rejected(self):
        layout = make_layout(max_cigar_ops=2)
        with pytest.raises(LayoutError):
            layout.pack_result(0, Cigar.from_string("1M1X1M1X1M"))

    def test_giant_run_rejected(self):
        layout = make_layout()
        with pytest.raises(LayoutError):
            layout.pack_result(0, Cigar.from_string(f"{1 << 24}M"))

    def test_unpack_wrong_size(self):
        layout = make_layout()
        with pytest.raises(LayoutError):
            layout.unpack_result(b"\x00" * 4)
