"""Tests for rank grouping and imbalance metrics."""

import pytest

from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError
from repro.pim.config import PimSystemConfig
from repro.pim.dpu import DpuKernelStats
from repro.pim.kernel import KernelConfig
from repro.pim.rank import group_by_rank, imbalance
from repro.pim.system import PimSystem


def stats(dpu_id: int, seconds: float, pairs: int = 10) -> DpuKernelStats:
    return DpuKernelStats(
        dpu_id=dpu_id,
        tasklets=4,
        pairs_done=pairs,
        instructions=1000.0,
        dma_cycles=100.0,
        dma_bytes=64,
        cycles=seconds * 425e6,
        seconds=seconds,
        bound="throughput",
    )


class TestGrouping:
    def test_groups_by_dpu_id(self):
        per_dpu = [stats(i, 0.1) for i in range(130)]
        ranks = group_by_rank(per_dpu, dpus_per_rank=64)
        assert [r.rank_id for r in ranks] == [0, 1, 2]
        assert [r.dpus for r in ranks] == [64, 64, 2]
        assert sum(r.pairs_done for r in ranks) == 1300

    def test_rank_time_is_slowest_member(self):
        per_dpu = [stats(0, 0.1), stats(1, 0.4), stats(64, 0.2)]
        ranks = group_by_rank(per_dpu)
        assert ranks[0].seconds == 0.4
        assert ranks[1].seconds == 0.2

    def test_utilization(self):
        per_dpu = [stats(0, 0.1), stats(1, 0.3)]
        rank = group_by_rank(per_dpu)[0]
        assert rank.utilization == pytest.approx(0.2 / 0.3)
        balanced = group_by_rank([stats(0, 0.3), stats(1, 0.3)])[0]
        assert balanced.utilization == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            group_by_rank([], dpus_per_rank=0)

    def test_empty(self):
        assert group_by_rank([]) == []


class TestImbalance:
    def test_balanced(self):
        assert imbalance([stats(0, 0.2), stats(1, 0.2)]) == pytest.approx(1.0)

    def test_skewed(self):
        assert imbalance([stats(0, 0.1), stats(1, 0.3)]) == pytest.approx(1.5)

    def test_empty(self):
        assert imbalance([]) == 1.0


class TestWithRealRun:
    def test_rank_summary_from_system_run(self):
        cfg = PimSystemConfig(
            num_dpus=8, num_ranks=2, tasklets=4, num_simulated_dpus=8
        )
        kc = KernelConfig(penalties=AffinePenalties(), max_read_len=50, max_edits=2)
        system = PimSystem(cfg, kc)
        pairs = ReadPairGenerator(length=50, error_rate=0.03, seed=15).pairs(64)
        run = system.align(pairs)
        ranks = group_by_rank(run.per_dpu, dpus_per_rank=cfg.dpus_per_rank)
        assert len(ranks) == 2
        assert sum(r.pairs_done for r in ranks) == 64
        assert 1.0 <= imbalance(run.per_dpu) < 2.0
