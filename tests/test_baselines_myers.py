"""Tests for Myers O(ND), Myers bit-parallel, and the Levenshtein DP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bitparallel import levenshtein_dp, myers_edit_distance
from repro.baselines.myers_ond import myers_indel_distance
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import LinearPenalties
from repro.errors import AlignmentError

from conftest import dna_seq, similar_pair


class TestLevenshteinDp:
    def test_known(self):
        assert levenshtein_dp("kitten", "sitting") == 3
        assert levenshtein_dp("", "") == 0
        assert levenshtein_dp("abc", "") == 3
        assert levenshtein_dp("", "abc") == 3
        assert levenshtein_dp("abc", "abc") == 0
        assert levenshtein_dp("abc", "abd") == 1

    @settings(max_examples=50, deadline=None)
    @given(a=dna_seq, b=dna_seq)
    def test_symmetry(self, a, b):
        assert levenshtein_dp(a, b) == levenshtein_dp(b, a)

    @settings(max_examples=50, deadline=None)
    @given(a=dna_seq)
    def test_identity(self, a):
        assert levenshtein_dp(a, a) == 0


class TestMyersBitParallel:
    def test_known(self):
        assert myers_edit_distance("kitten", "sitting") == 3
        assert myers_edit_distance("", "xyz") == 3
        assert myers_edit_distance("xyz", "") == 3
        assert myers_edit_distance("GATTACA", "GATCACA") == 1

    @settings(max_examples=120, deadline=None)
    @given(a=dna_seq, b=dna_seq)
    def test_matches_dp(self, a, b):
        assert myers_edit_distance(a, b) == levenshtein_dp(a, b)

    def test_long_pattern_beyond_64_bits(self):
        # arbitrary-precision ints handle patterns > 64 chars transparently;
        # verify against the DP anyway.
        a = "ACGT" * 40  # 160 chars
        b = a[:50] + "T" + a[50:120] + a[121:]
        assert myers_edit_distance(a, b) == levenshtein_dp(a, b)


class TestMyersOnd:
    def test_known_indel_distances(self):
        assert myers_indel_distance("ABCABBA", "CBABAC") == 5  # Myers' paper example
        assert myers_indel_distance("", "") == 0
        assert myers_indel_distance("AAA", "AAA") == 0
        assert myers_indel_distance("A", "G") == 2  # no substitutions allowed

    def test_max_d_cap(self):
        with pytest.raises(AlignmentError):
            myers_indel_distance("AAAA", "TTTT", max_d=3)
        assert myers_indel_distance("AAAA", "TTTT", max_d=8) == 8

    @settings(max_examples=60, deadline=None)
    @given(pair=similar_pair(max_len=25, max_edits=6))
    def test_equals_wfa_with_sub_cost_two(self, pair):
        # indel (LCS) distance == Levenshtein with substitution cost 2
        p, t = pair
        wfa = WavefrontAligner(LinearPenalties(mismatch=2, indel=1))
        assert myers_indel_distance(p, t) == wfa.score(p, t)

    @settings(max_examples=40, deadline=None)
    @given(a=dna_seq, b=dna_seq)
    def test_bounds_vs_levenshtein(self, a, b):
        # lev <= indel <= 2 * lev, and parity matches |len difference|
        lev = levenshtein_dp(a, b)
        ind = myers_indel_distance(a, b)
        assert lev <= ind <= 2 * lev
        assert (ind - abs(len(a) - len(b))) % 2 == 0
