"""Tests for the two-clock span profiler."""

import pytest

from repro.obs.profiler import Profiler


class FakeClock:
    """Deterministic monotonic clock advanced by the test."""

    def __init__(self):
        self.t = 100.0  # non-zero epoch: relative times must subtract it

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


class TestWallSpans:
    def test_span_measures_wall_time(self, clock):
        prof = Profiler(clock=clock)
        with prof.span("push"):
            clock.tick(2.0)
        (rec,) = prof.spans("push")
        assert rec.wall_start == 0.0  # epoch-relative
        assert rec.wall_seconds == pytest.approx(2.0)
        assert rec.model_seconds is None

    def test_nesting_sets_parent(self, clock):
        prof = Profiler(clock=clock)
        with prof.span("outer") as outer:
            with prof.span("inner") as inner:
                clock.tick(1.0)
            assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert prof.children(outer.span_id) == [inner]

    def test_span_closed_on_exception(self, clock):
        prof = Profiler(clock=clock)
        with pytest.raises(RuntimeError):
            with prof.span("boom"):
                clock.tick(1.0)
                raise RuntimeError("x")
        (rec,) = prof.spans("boom")
        assert rec.wall_seconds == pytest.approx(1.0)
        # the stack unwound: a new span is a root again
        with prof.span("next") as nxt:
            pass
        assert nxt.parent_id is None

    def test_labels_stringified(self, clock):
        prof = Profiler(clock=clock)
        with prof.span("push", dpu=3):
            pass
        assert prof.spans("push")[0].labels == {"dpu": "3"}


class TestModelSpans:
    def test_add_model_span_is_leaf(self):
        prof = Profiler()
        rec = prof.add_model_span("kernel", 1.5, 0.25, run=0)
        assert rec.model_start == 1.5
        assert rec.model_seconds == 0.25
        assert rec.wall_seconds is None

    def test_model_span_nests_children(self):
        prof = Profiler()
        with prof.model_span("run", 0.0, 1.0) as run:
            child = prof.add_model_span("kernel", 0.2, 0.5)
        assert child.parent_id == run.span_id

    def test_annotate_model_on_wall_span(self, clock):
        prof = Profiler(clock=clock)
        with prof.span("mixed") as rec:
            clock.tick(0.5)
        prof.annotate_model(rec, 0.0, 2.0)
        assert rec.wall_seconds == pytest.approx(0.5)
        assert rec.model_seconds == 2.0


class TestQueries:
    def _populated(self):
        prof = Profiler()
        prof.add_model_span("kernel", 0.0, 1.0, run=0)
        prof.add_model_span("kernel", 1.0, 2.0, run=1)
        prof.add_model_span("launch", 0.0, 0.5, run=0)
        return prof

    def test_label_subset_match(self):
        prof = self._populated()
        assert len(prof.spans("kernel")) == 2
        assert len(prof.spans("kernel", run=1)) == 1
        assert prof.spans("kernel", run=9) == []

    def test_model_seconds_sums_matches(self):
        prof = self._populated()
        assert prof.model_seconds("kernel") == pytest.approx(3.0)
        assert prof.model_seconds("kernel", run=0) == pytest.approx(1.0)

    def test_totals_sorted_and_aggregated(self, clock):
        prof = Profiler(clock=clock)
        with prof.span("zeta"):
            clock.tick(1.0)
        prof.add_model_span("alpha", 0.0, 2.0)
        totals = prof.totals()
        assert list(totals) == ["alpha", "zeta"]
        assert totals["alpha"]["model_seconds"] == pytest.approx(2.0)
        assert totals["zeta"]["wall_seconds"] == pytest.approx(1.0)
        assert totals["zeta"]["count"] == 1


class TestRendering:
    def test_report_lists_names(self):
        prof = self._prof()
        text = prof.report()
        assert "profile" in text
        assert "kernel" in text and "launch" in text

    def test_to_dict_round_trips_through_json(self):
        import json

        prof = self._prof()
        doc = [r.to_dict() for r in prof.records]
        assert json.loads(json.dumps(doc)) == doc

    @staticmethod
    def _prof():
        prof = Profiler()
        prof.add_model_span("kernel", 0.0, 1.0, run=0)
        prof.add_model_span("launch", 1.0, 0.5, run=0)
        return prof
