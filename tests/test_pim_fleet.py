"""Differential shard-equivalence suite for the sharded fleet.

The fleet's core claim: placement never changes results.  For any
workload, penalties and worker count, a :class:`~repro.pim.fleet.FleetCoordinator`
at ``shards=1`` is byte-identical to an unsharded
:class:`~repro.pim.scheduler.BatchScheduler` run — results, recovery
reports, metric snapshots — and ``shards=2/4`` reproduce the same
stream under deterministic round striping.  The acceptance pin runs the
paper-shaped 512-pair workload at 4 shards, kills a shard's journal
mid-run, resumes from the federated manifest, and requires everything
(including per-shard health-ledger state and journal bytes) to replay
identically.
"""

from __future__ import annotations

import shutil
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.penalties import AffinePenalties, EditPenalties, LinearPenalties
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError, DegradedCapacity, JournalError
from repro.obs.events import validate_event_log
from repro.obs.telemetry import RunTelemetry
from repro.pim.config import PimSystemConfig
from repro.pim.faults import DpuDeath, FaultPlan, RetryPolicy, TaskletStall
from repro.pim.fleet import (
    MANIFEST_SCHEMA,
    FleetCoordinator,
    shard_journal_name,
    slice_fault_plan,
)
from repro.pim.health import HealthPolicy
from repro.pim.journal import result_to_dict
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem

NUM_DPUS = 4


def make_config() -> PimSystemConfig:
    return PimSystemConfig(
        num_dpus=NUM_DPUS, num_ranks=1, tasklets=4, num_simulated_dpus=NUM_DPUS
    )


def make_kernel(penalties=None, max_read_len: int = 32) -> KernelConfig:
    return KernelConfig(
        penalties=penalties if penalties is not None else EditPenalties(),
        max_read_len=max_read_len,
        max_edits=4,
    )


def make_fleet(shards: int, penalties=None, **kwargs) -> FleetCoordinator:
    return FleetCoordinator(
        make_config(), make_kernel(penalties), shards=shards, **kwargs
    )


def make_pairs(n: int, seed: int = 7, length: int = 24):
    return ReadPairGenerator(length=length, error_rate=0.05, seed=seed).pairs(n)


def flat_results(run) -> list[tuple[int, int, str]]:
    """Workload-global (index, score, cigar) triples, sorted."""
    out, start = [], 0
    for rnd, size in zip(run.per_round, run.schedule.round_sizes()):
        out.extend((i + start, s, str(c)) for i, s, c in rnd.results)
        start += size
    return sorted(out)


class TestShardEquivalence:
    def test_shards1_byte_identical_to_unsharded(self):
        """shards=1 is the unsharded scheduler to the byte — results,
        per-round checkpoints, timings AND the metric snapshot."""
        pairs = make_pairs(50)
        tel = RunTelemetry()
        baseline = BatchScheduler(
            PimSystem(make_config(), make_kernel(), telemetry=tel)
        ).run(pairs, pairs_per_round=8, collect_results=True)

        fleet = make_fleet(1, telemetry=RunTelemetry())
        run = fleet.run(pairs, pairs_per_round=8, collect_results=True)

        assert [result_to_dict(r) for r in run.per_round] == [
            result_to_dict(r) for r in baseline.per_round
        ]
        assert run.total_seconds == baseline.total_seconds
        assert run.recovery is None and baseline.recovery is None
        assert fleet.metrics_snapshot() == tel.registry.snapshot()

    @given(
        n=st.integers(min_value=1, max_value=36),
        seed=st.integers(min_value=0, max_value=2**16),
        pairs_per_round=st.integers(min_value=3, max_value=13),
        penalties=st.sampled_from(
            [EditPenalties(), LinearPenalties(), AffinePenalties()]
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_workload_any_penalties(
        self, n, seed, pairs_per_round, penalties
    ):
        """For any workload/penalties, every shard count delivers the
        unsharded result stream."""
        pairs = make_pairs(n, seed=seed)
        baseline = BatchScheduler(
            PimSystem(make_config(), make_kernel(penalties))
        ).run(pairs, pairs_per_round=pairs_per_round, collect_results=True)
        expected = flat_results(baseline)
        for shards in (1, 2, 4):
            run = make_fleet(shards, penalties).run(
                pairs, pairs_per_round=pairs_per_round, collect_results=True
            )
            assert flat_results(run) == expected, f"shards={shards} diverged"
            assert run.recovery is None

    @given(
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**16),
        dead=st.integers(min_value=0, max_value=NUM_DPUS - 1),
        transient=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_uniform_faults_identical_across_shard_counts(
        self, n, seed, dead, transient
    ):
        """Under a uniform-domain fault plan (same local fault on every
        shard), results AND recovery reports are identical at every
        shard count."""
        pairs = make_pairs(n, seed=seed)
        plan = FaultPlan(
            seed=3,
            deaths=(DpuDeath(dpu_id=dead, attempts=(0,) if transient else None),),
        )
        policy = RetryPolicy(max_attempts=2, max_requeues=NUM_DPUS - 1)
        baseline = BatchScheduler(PimSystem(make_config(), make_kernel())).run(
            pairs,
            pairs_per_round=7,
            collect_results=True,
            fault_plan=plan,
            retry_policy=policy,
        )
        for shards in (1, 2, 4):
            run = make_fleet(shards, fault_domain="uniform").run(
                pairs,
                pairs_per_round=7,
                collect_results=True,
                fault_plan=plan,
                retry_policy=policy,
            )
            assert flat_results(run) == flat_results(baseline)
            assert run.recovery.to_dict() == baseline.recovery.to_dict()

    def test_worker_counts_0_1_2_identical(self):
        """Deterministic placement at any per-shard worker count: the
        host-parallel fan-out below the shards never changes results."""
        pairs = make_pairs(40)
        reference = None
        for workers in (1, 0, 2):
            run = make_fleet(2, workers=workers).run(
                pairs, pairs_per_round=8, collect_results=True
            )
            doc = [result_to_dict(r) for r in run.per_round]
            if reference is None:
                reference = doc
            else:
                assert doc == reference, f"workers={workers} diverged"

    def test_shard_workers_process_pool_identical(self):
        """Process-parallel shard execution returns the same FleetRun
        the sequential path does (and federates worker telemetry)."""
        pairs = make_pairs(48)
        sequential = make_fleet(4, telemetry=RunTelemetry())
        seq_run = sequential.run(pairs, pairs_per_round=6, collect_results=True)
        parallel = make_fleet(4, shard_workers=2, telemetry=RunTelemetry())
        par_run = parallel.run(pairs, pairs_per_round=6, collect_results=True)
        assert [result_to_dict(r) for r in par_run.per_round] == [
            result_to_dict(r) for r in seq_run.per_round
        ]
        assert par_run.total_seconds == seq_run.total_seconds
        # counters federate identically either way (gauges may differ:
        # merge keeps the max, a live registry keeps the last write)
        def counters(snap):
            return [
                f for f in snap["families"] if f["kind"] == "counter"
            ]

        assert counters(parallel.metrics_snapshot()) == counters(
            sequential.metrics_snapshot()
        )


class TestAcceptance512:
    """The ISSUE's acceptance pin: 512 pairs, 4 shards, byte identity."""

    PAIRS = 512
    PPR = 32

    def test_fleet4_matches_fleet1_fault_free(self):
        pairs = make_pairs(self.PAIRS, seed=17, length=32)
        one = make_fleet(1).run(
            pairs, pairs_per_round=self.PPR, collect_results=True
        )
        four = make_fleet(4).run(
            pairs, pairs_per_round=self.PPR, collect_results=True
        )
        assert [result_to_dict(r) for r in four.per_round] == [
            result_to_dict(r) for r in one.per_round
        ]
        assert four.results() == one.results()
        # federation buys modeled time, never different answers
        assert four.total_seconds < one.total_seconds
        assert four.throughput() > one.throughput()

    def test_fleet4_matches_fleet1_under_faults(self):
        """Scores, CIGARs AND RecoveryReports byte-identical under an
        injected death (uniform domain: the same local DPU dies on
        every shard)."""
        pairs = make_pairs(self.PAIRS, seed=17, length=32)
        plan = FaultPlan(
            seed=5,
            deaths=(DpuDeath(dpu_id=1),),
            stalls=(TaskletStall(dpu_id=2, attempts=(0,)),),
        )
        runs = {}
        for shards in (1, 4):
            runs[shards] = make_fleet(shards, fault_domain="uniform").run(
                pairs,
                pairs_per_round=self.PPR,
                collect_results=True,
                fault_plan=plan,
            )
        assert flat_results(runs[4]) == flat_results(runs[1])
        assert runs[4].recovery.to_dict() == runs[1].recovery.to_dict()

    def test_mid_round_shard_kill_resume_replays_identically(self, tmp_path):
        """Kill one shard's journal mid-round and another's entirely;
        resume must replay to identical results, recovery, health
        state and journal bytes."""
        pairs = make_pairs(self.PAIRS, seed=17, length=32)
        plan = FaultPlan(seed=5, deaths=(DpuDeath(dpu_id=1),))
        full_dir = tmp_path / "full"
        crash_dir = tmp_path / "crash"

        def fleet():
            return make_fleet(
                4, health_policy=HealthPolicy(), telemetry=RunTelemetry()
            )

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            reference = fleet()
            full = reference.run(
                pairs,
                pairs_per_round=self.PPR,
                collect_results=True,
                fault_plan=plan,
                journal=full_dir,
            )
            shutil.copytree(full_dir, crash_dir)
            # shard 1: torn mid-run (header + one round survives);
            # shard 3: crashed before its journal hit the disk at all
            torn = crash_dir / shard_journal_name(1)
            lines = torn.read_text().splitlines(True)
            torn.write_text("".join(lines[:2]))
            (crash_dir / shard_journal_name(3)).unlink()

            resumer = fleet()
            resumed = resumer.resume_run(
                crash_dir,
                pairs,
                pairs_per_round=self.PPR,
                collect_results=True,
                fault_plan=plan,
            )

        assert resumed.results() == full.results()
        assert resumed.recovery.to_dict() == full.recovery.to_dict()
        assert resumed.total_seconds == full.total_seconds
        assert resumed.placements == full.placements
        assert resumed.rounds_replayed > 0
        # health ledgers replay to identical per-shard breaker state
        assert resumer.health_states() == reference.health_states()
        # every journal file rebuilt byte-identically
        for path in sorted(full_dir.iterdir()):
            assert (crash_dir / path.name).read_bytes() == path.read_bytes()

    def test_resume_at_different_worker_count_validates(self, tmp_path):
        """The fingerprint excludes workers (and shards lives in the
        manifest), so a crashed fleet run resumes at any worker count."""
        pairs = make_pairs(64, seed=3)
        journal = tmp_path / "journal"
        full = make_fleet(2).run(
            pairs, pairs_per_round=8, collect_results=True, journal=journal
        )
        torn = journal / shard_journal_name(0)
        lines = torn.read_text().splitlines(True)
        torn.write_text("".join(lines[:3]))
        resumed = make_fleet(2, workers=2).resume_run(
            journal, pairs, pairs_per_round=8, collect_results=True
        )
        assert resumed.results() == full.results()


class TestPlacementAndRebalance:
    def test_striped_placement_is_deterministic(self):
        fleet = make_fleet(4)
        assert fleet.place_rounds(6) == [0, 1, 2, 3, 0, 1]
        assert fleet.place_rounds(6) == [0, 1, 2, 3, 0, 1]

    def test_quarantined_shard_loses_placement_and_event_fires(self):
        """Killing most of shard 0 drops its healthy fraction below the
        threshold: later placements avoid it and a ``rebalance`` event
        lands in the primary event log."""
        telemetry = RunTelemetry()
        fleet = make_fleet(
            2, health_policy=HealthPolicy(), telemetry=telemetry
        )
        pairs = make_pairs(60)
        plan = FaultPlan(
            seed=3,
            deaths=(
                DpuDeath(dpu_id=0),
                DpuDeath(dpu_id=1),
                DpuDeath(dpu_id=2),
            ),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            run = fleet.run(
                pairs, pairs_per_round=6, collect_results=True, fault_plan=plan
            )
            now = run.total_seconds
            assert fleet.available_shards(now) == (1,)
            with pytest.warns(DegradedCapacity):
                placements = fleet.place_rounds(4, now=now)
        assert placements == [1, 1, 1, 1]
        rebalances = telemetry.events.events("rebalance")
        assert rebalances, "no rebalance event on active-set change"
        attrs = dict(rebalances[-1].attrs)
        assert attrs == {"active": 1, "excluded": "0", "shards": 2}
        # pairs still all delivered despite the dying shard
        assert sorted(i for i, _, _ in run.results()) == list(range(60))

    def test_event_federation_orders_and_validates(self):
        telemetry = RunTelemetry()
        fleet = make_fleet(
            2, health_policy=HealthPolicy(), telemetry=telemetry
        )
        pairs = make_pairs(60)
        plan = FaultPlan(seed=3, deaths=(DpuDeath(dpu_id=0),))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedCapacity)
            fleet.run(
                pairs, pairs_per_round=6, collect_results=True, fault_plan=plan
            )
        records = fleet.event_records()
        header = validate_event_log(records)
        assert header["events"] == len(records) - 1
        # shard events carry their shard id; times never run backwards
        times = [r["t_s"] for r in records[1:]]
        assert times == sorted(times)
        assert any(r["attrs"].get("shard") == 0 for r in records[1:])

    def test_health_doc_merges_shards(self):
        fleet = make_fleet(2, health_policy=HealthPolicy())
        doc = fleet.health_doc()
        assert doc["schema"] == "repro.pim.fleet.health/v1"
        assert doc["shards"] == 2
        assert doc["total_dpus"] == 2 * NUM_DPUS
        assert doc["healthy_fraction"] == 1.0
        assert doc["available_shards"] == [0, 1]
        assert set(doc["per_shard"]) == {"0", "1"}


class TestFaultDomains:
    def test_slice_keeps_and_rebases_this_shards_faults(self):
        plan = FaultPlan(
            seed=9,
            deaths=(DpuDeath(dpu_id=1), DpuDeath(dpu_id=5)),
            stalls=(TaskletStall(dpu_id=4, attempts=(0,)),),
        )
        shard0 = slice_fault_plan(plan, 0, NUM_DPUS)
        shard1 = slice_fault_plan(plan, 1, NUM_DPUS)
        assert [f.dpu_id for f in shard0.deaths] == [1]
        assert shard0.stalls == ()
        assert [f.dpu_id for f in shard1.deaths] == [1]  # 5 - 4
        assert [f.dpu_id for f in shard1.stalls] == [0]  # 4 - 4
        assert shard1.seed == plan.seed

    def test_empty_slice_is_still_a_plan(self):
        """A shard with no faults still takes the resilient path, so
        every shard count produces structurally identical recovery."""
        plan = FaultPlan(seed=9, deaths=(DpuDeath(dpu_id=0),))
        empty = slice_fault_plan(plan, 3, NUM_DPUS)
        assert empty is not None
        assert empty.deaths == () and empty.seed == plan.seed

    def test_global_domain_death_only_hurts_its_shard(self):
        """A global-domain death on shard 1's first DPU leaves shards
        0/2/3 fault-free but still produces one coherent global
        recovery report."""
        pairs = make_pairs(64)
        plan = FaultPlan(seed=3, deaths=(DpuDeath(dpu_id=NUM_DPUS),))
        run = make_fleet(4, fault_domain="global").run(
            pairs, pairs_per_round=8, collect_results=True, fault_plan=plan
        )
        assert sorted(i for i, _, _ in run.results()) == list(range(64))
        rec = run.recovery.to_dict()
        assert rec["completed_pairs"] == list(range(64))
        assert rec["faults_seen"] > 0
        assert rec["rerun_pairs"], "the dead DPU's pairs were never requeued"


class TestValidation:
    def test_bad_construction_refused(self):
        with pytest.raises(ConfigError):
            make_fleet(0)
        with pytest.raises(ConfigError):
            make_fleet(2, fault_domain="banana")
        with pytest.raises(ConfigError):
            make_fleet(2, min_shard_healthy_fraction=0.0)
        # shard_workers > 1 + health_policy used to be refused; health
        # deltas now ride home in ShardOutcome, so it constructs fine
        fleet = make_fleet(2, shard_workers=2, health_policy=HealthPolicy())
        assert all(h is not None for h in fleet.shard_healths)

    def test_resume_refuses_shard_count_mismatch(self, tmp_path):
        pairs = make_pairs(30)
        journal = tmp_path / "journal"
        make_fleet(2).run(
            pairs, pairs_per_round=6, collect_results=True, journal=journal
        )
        with pytest.raises(JournalError, match="shards"):
            make_fleet(4).resume_run(
                journal, pairs, pairs_per_round=6, collect_results=True
            )

    def test_resume_refuses_workload_mismatch(self, tmp_path):
        pairs = make_pairs(30)
        journal = tmp_path / "journal"
        make_fleet(2).run(
            pairs, pairs_per_round=6, collect_results=True, journal=journal
        )
        with pytest.raises(JournalError, match="fingerprint"):
            make_fleet(2).resume_run(
                journal,
                make_pairs(30, seed=99),
                pairs_per_round=6,
                collect_results=True,
            )

    def test_resume_refuses_fault_domain_mismatch(self, tmp_path):
        pairs = make_pairs(30)
        journal = tmp_path / "journal"
        make_fleet(2, fault_domain="global").run(
            pairs, pairs_per_round=6, collect_results=True, journal=journal
        )
        with pytest.raises(JournalError, match="fault_domain"):
            make_fleet(2, fault_domain="uniform").resume_run(
                journal, pairs, pairs_per_round=6, collect_results=True
            )

    def test_manifest_shape(self, tmp_path):
        pairs = make_pairs(20)
        journal = tmp_path / "journal"
        make_fleet(2).run(
            pairs, pairs_per_round=6, collect_results=True, journal=journal
        )
        manifest = FleetCoordinator.load_manifest(journal)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["shards"] == 2
        assert len(manifest["placements"]) == 4  # ceil(20 / 6)
        assert "workers" not in manifest["fingerprint"]
        assert "shards" not in manifest["fingerprint"]

    def test_fleet_run_summary_doc(self):
        pairs = make_pairs(20)
        run = make_fleet(2).run(pairs, pairs_per_round=6, collect_results=True)
        doc = run.to_dict()
        assert doc["schema"] == "repro.pim.fleet.run/v1"
        assert doc["shards"] == 2
        assert doc["rounds"] == 4
        assert doc["recovery"] is None
        assert doc["throughput_pairs_per_s"] == pytest.approx(run.throughput())
