"""Tests for cost tables, calibration record, and report formatting."""

import pytest

from repro.core.wavefront import WfaCounters
from repro.perf.calibration import PAPER_TARGETS
from repro.perf.costs import CpuCostModel, DpuCostModel
from repro.perf.report import (
    format_comparison,
    format_series,
    format_table,
    human_time,
)


def counters(cells=100, ext=50, iters=10, bt=20) -> WfaCounters:
    c = WfaCounters()
    c.cells_computed = cells
    c.extend_steps = ext
    c.score_iterations = iters
    c.backtrace_ops = bt
    return c


class TestCostModels:
    def test_dpu_instruction_estimate(self):
        m = DpuCostModel()
        got = m.instructions(counters(), pairs=1)
        expect = (
            100 * m.per_cell
            + 50 * m.per_extend_step
            + 10 * m.per_score_iteration
            + 20 * m.per_backtrace_op
            + m.per_pair_overhead
        )
        assert got == pytest.approx(expect)

    def test_cpu_cheaper_per_cell_than_dpu(self):
        """Vectorized CPU beats the scalar DPU per cell (paper §I)."""
        assert CpuCostModel().per_cell < DpuCostModel().per_cell

    def test_linear_in_counts(self):
        m = DpuCostModel()
        one = m.instructions(counters(), pairs=1)
        c2 = counters(cells=200, ext=100, iters=20, bt=40)
        two = m.instructions(c2, pairs=2)
        assert two == pytest.approx(2 * one)

    def test_zero_work(self):
        assert DpuCostModel().instructions(WfaCounters(), pairs=0) == 0.0


class TestCalibration:
    def test_paper_targets(self):
        assert PAPER_TARGETS.total_speedup_e2 == 4.87
        assert PAPER_TARGETS.total_speedup_e4 == 4.05
        assert PAPER_TARGETS.kernel_speedup_e2 == 37.4
        assert PAPER_TARGETS.kernel_speedup_e4 == 12.3
        assert PAPER_TARGETS.num_pairs == 5_000_000

    def test_rows(self):
        rows = dict(PAPER_TARGETS.as_rows())
        assert rows["kernel_speedup_E2%"] == 37.4
        assert len(rows) == 4


class TestReport:
    def test_human_time(self):
        assert human_time(2.5) == "2.5 s"
        assert human_time(0.0025) == "2.5 ms"
        assert human_time(2.5e-6) == "2.5 us"
        assert human_time(2.5e-10) == "0.25 ns"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_format_series(self):
        out = format_series("s", [1, 2], [0.5, 0.25])
        assert out == "s: 1=0.5, 2=0.25"

    def test_format_comparison_ratio(self):
        out = format_comparison([("m", 2.0, 1.0)])
        assert "0.50x" in out
        assert "m" in out
