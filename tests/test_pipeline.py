"""Tests for the filter-then-align pipeline."""

import pytest

from repro.baselines.gotoh import gotoh_score
from repro.core.penalties import AffinePenalties
from repro.data.generator import ReadPair, ReadPairGenerator, random_sequence
from repro.errors import ConfigError
from repro.pipeline import FilterAlignPipeline
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem

import random

PEN = AffinePenalties(4, 6, 2)


def make_system(max_edits: int = 3) -> PimSystem:
    cfg = PimSystemConfig(num_dpus=4, num_ranks=1, tasklets=4, num_simulated_dpus=4)
    kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=max_edits)
    return PimSystem(cfg, kc)


def contaminated_workload(n_good: int, n_junk: int, seed: int = 55):
    """Similar pairs mixed with unrelated-random 'candidate' pairs."""
    rng = random.Random(seed)
    gen = ReadPairGenerator(length=50, error_rate=0.04, seed=seed)
    good = gen.pairs(n_good)
    junk = [
        ReadPair(
            pattern=random_sequence(50, rng), text=random_sequence(50, rng)
        )
        for _ in range(n_junk)
    ]
    pairs = good + junk
    rng.shuffle(pairs)
    return pairs


class TestFiltering:
    def test_clean_workload_all_accepted(self):
        pairs = ReadPairGenerator(length=50, error_rate=0.04, seed=56).pairs(12)
        result = FilterAlignPipeline(make_system(), max_edits=2).run(pairs)
        assert result.filter_stats.acceptance_rate == 1.0
        assert result.pim is not None
        assert all(ok for ok, _s, _c in result.outcomes)

    def test_junk_rejected(self):
        pairs = contaminated_workload(n_good=8, n_junk=8)
        result = FilterAlignPipeline(make_system(), max_edits=2).run(pairs)
        assert 0 < result.filter_stats.accepted < len(pairs)
        # random 50bp pairs essentially never pass a 2-edit filter
        assert result.filter_stats.rejected >= 8

    def test_survivor_scores_correct(self):
        pairs = contaminated_workload(n_good=6, n_junk=6)
        result = FilterAlignPipeline(make_system(), max_edits=2).run(pairs)
        for pair, (ok, score, cigar) in zip(pairs, result.outcomes):
            if ok:
                assert score == gotoh_score(pair.pattern, pair.text, PEN)
                cigar.validate(pair.pattern, pair.text)
            else:
                assert score is None and cigar is None

    def test_all_rejected_skips_pim(self):
        rng = random.Random(57)
        pairs = [
            ReadPair(
                pattern=random_sequence(50, rng), text=random_sequence(50, rng)
            )
            for _ in range(5)
        ]
        result = FilterAlignPipeline(make_system(), max_edits=1).run(pairs)
        assert result.filter_stats.accepted == 0
        assert result.pim is None
        assert result.total_seconds == result.filter_stats.seconds

    def test_timing_components(self):
        pairs = contaminated_workload(n_good=6, n_junk=2)
        result = FilterAlignPipeline(make_system(), max_edits=2).run(pairs)
        assert result.filter_stats.seconds > 0
        assert result.total_seconds > result.filter_stats.seconds
        assert result.throughput() > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            FilterAlignPipeline(make_system(), max_edits=-1)
        with pytest.raises(ConfigError):
            FilterAlignPipeline(make_system(), max_edits=2).run([])
        with pytest.raises(ConfigError):
            FilterAlignPipeline(
                make_system(), max_edits=2, filter_cells_per_second=0
            )

    def test_filter_never_drops_in_budget_pairs(self):
        """Soundness: every pair within the kernel's edit budget survives."""
        gen = ReadPairGenerator(length=50, error_rate=0.06, seed=58)
        pairs = gen.pairs(20)
        result = FilterAlignPipeline(make_system(max_edits=3), max_edits=3).run(pairs)
        assert result.filter_stats.acceptance_rate == 1.0
