"""CLI coverage for ``repro serve`` / ``repro loadgen``.

The loadgen test doubles as the CI hook the Makefile's ``serve-demo``
target mirrors: a 200-request replay whose JSONL latency report must
pass :func:`~repro.serve.loadgen.validate_load_report` — and the
validator itself is exercised against hand-corrupted reports.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.serve import validate_load_report

FAST = [
    "--dpus", "2", "--tasklets", "2", "--max-read-len", "20", "--max-edits", "3",
]


class TestLoadgenCommand:
    def test_200_request_replay_writes_schema_valid_report(self, tmp_path, capsys):
        report = tmp_path / "load.jsonl"
        metrics = tmp_path / "serve.prom"
        code = main(
            ["loadgen", "--requests", "200", "--rate", "10000",
             "--process", "bursty", "--length", "10", "--seed", "5",
             "--cache", "64", "--report", str(report),
             "--metrics-out", str(metrics)] + FAST
        )
        assert code == 0
        summary = validate_load_report(report)
        assert summary["requests"] == 200
        assert summary["completed"] + summary["rejected"] == 200
        assert summary["cached_pairs"] > 0  # the pool guarantees duplicates
        out = capsys.readouterr().out
        assert "latency p50 / p99" in out
        text = metrics.read_text()
        assert "serve_requests_total" in text
        assert "serve_cache_lookups_total" in text

    def test_fault_injected_replay_still_validates(self, tmp_path):
        report = tmp_path / "load.jsonl"
        code = main(
            ["loadgen", "--requests", "40", "--rate", "10000",
             "--length", "10", "--kill-dpu", "1",
             "--report", str(report)] + FAST
        )
        assert code == 0
        summary = validate_load_report(report)
        assert summary["recovery"]["faults_seen"] > 0
        assert summary["recovery"]["abandoned_pairs"] == []
        assert summary["completed"] == 40

    def test_replay_is_deterministic_across_invocations(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(
                ["loadgen", "--requests", "60", "--rate", "10000",
                 "--length", "10", "--seed", "9", "--cache", "32",
                 "--report", str(path)] + FAST
            ) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_bad_config_is_a_clean_error(self, capsys):
        assert main(["loadgen", "--requests", "0"] + FAST) == 1
        assert "error:" in capsys.readouterr().err


class TestServeCommand:
    def test_jsonl_roundtrip(self, tmp_path, capsys):
        requests = tmp_path / "req.jsonl"
        responses = tmp_path / "resp.jsonl"
        requests.write_text(
            "\n".join(
                [
                    json.dumps({"client": "a", "id": "q0",
                                "pairs": [["ACGTACGTACGT", "ACGTACGAACGT"]]}),
                    json.dumps({"client": "b", "id": "q1",
                                "pairs": [["ACGTACGTACGT", "ACGTACGAACGT"],
                                          ["TTTTCCCC", "TTTTCCCA"]]}),
                ]
            )
            + "\n"
        )
        code = main(
            ["serve", "-i", str(requests), "-o", str(responses),
             "--cache", "8"] + FAST
        )
        assert code == 0
        lines = [json.loads(l) for l in responses.read_text().splitlines()]
        assert [r["id"] for r in lines] == ["q0", "q1"]
        assert lines[0]["scores"] and lines[0]["cigars"][0]
        assert len(lines[1]["scores"]) == 2
        # identical pair in q1 hits the result cached from q0's batch
        # only if batches flushed between; both here are in one drain, so
        # just pin the structural fields
        for record in lines:
            assert set(record) >= {"client", "id", "scores", "cigars",
                                   "cached", "latency_s", "batches"}
        assert "served 2 request(s)" in capsys.readouterr().err

    def test_malformed_request_line_fails_cleanly(self, tmp_path, capsys):
        requests = tmp_path / "req.jsonl"
        requests.write_text('{"client": "a", "no_pairs_key": []}\n')
        assert main(["serve", "-i", str(requests)] + FAST) == 1
        assert "line 1" in capsys.readouterr().err


class TestReportValidator:
    def make_report(self, tmp_path):
        path = tmp_path / "load.jsonl"
        assert main(
            ["loadgen", "--requests", "20", "--rate", "10000",
             "--length", "10", "--report", str(path)] + FAST
        ) == 0
        return [json.loads(l) for l in path.read_text().splitlines()]

    def test_rejects_wrong_schema(self, tmp_path):
        records = self.make_report(tmp_path)
        records[0]["schema"] = "something/else"
        with pytest.raises(ServeError, match="bad header"):
            validate_load_report(records)

    def test_rejects_tampered_counts(self, tmp_path):
        records = self.make_report(tmp_path)
        records[-1]["completed"] += 1
        with pytest.raises(ServeError, match="disagrees"):
            validate_load_report(records)

    def test_rejects_tampered_percentile(self, tmp_path):
        records = self.make_report(tmp_path)
        records[-1]["latency_p99_s"] = 123.0
        with pytest.raises(ServeError, match="latency_p99_s"):
            validate_load_report(records)

    def test_rejects_dropped_request_record(self, tmp_path):
        records = self.make_report(tmp_path)
        del records[3]
        with pytest.raises(ServeError):
            validate_load_report(records)
