"""Tests for RunTelemetry: model-timeline layout, reconciliation, and
the parallel ≡ sequential guarantee for the whole telemetry surface."""

import json

import pytest

from repro.core.penalties import AffinePenalties
from repro.data.datasets import DatasetSpec
from repro.data.generator import ReadPairGenerator
from repro.errors import TelemetryError
from repro.obs import RunTelemetry, to_chrome_trace
from repro.obs.telemetry import SECTIONS
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.scheduler import BatchScheduler
from repro.pim.system import PimSystem

PEN = AffinePenalties(4, 6, 2)


def make_system(workers=1, num_dpus=4, telemetry=None, engine="scalar"):
    cfg = PimSystemConfig(
        num_dpus=num_dpus,
        num_ranks=1,
        tasklets=2,
        num_simulated_dpus=num_dpus,
        workers=workers,
    )
    kc = KernelConfig(
        penalties=PEN, max_read_len=50, max_edits=2, engine=engine
    )
    return PimSystem(cfg, kc, telemetry=telemetry)


def aligned_telemetry(workers=1, pairs=10, seed=1, engine="scalar"):
    tel = RunTelemetry()
    system = make_system(workers=workers, telemetry=tel, engine=engine)
    batch = ReadPairGenerator(length=50, error_rate=0.04, seed=seed).pairs(pairs)
    run = system.align(batch)
    return tel, run


class TestTimelineLayout:
    def test_sections_tile_the_run(self):
        tel, run = aligned_telemetry()
        prof = tel.profiler
        starts = {}
        for name in SECTIONS:
            (rec,) = prof.spans(name, run=0)
            starts[name] = (rec.model_start, rec.model_seconds)
        t = 0.0
        for name in SECTIONS:
            assert starts[name][0] == pytest.approx(t)
            t += starts[name][1]
        assert t == pytest.approx(run.total_seconds)

    def test_dpu_kernel_children_under_kernel(self):
        tel, run = aligned_telemetry()
        prof = tel.profiler
        (kernel,) = prof.spans("kernel", run=0)
        kids = prof.children(kernel.span_id)
        assert [k.name for k in kids] == ["dpu_kernel"] * 4
        assert {k.labels["dpu"] for k in kids} == {"0", "1", "2", "3"}
        # the kernel section is the max of its children (bottleneck DPU)
        assert kernel.model_seconds == pytest.approx(
            max(k.model_seconds for k in kids)
        )

    def test_runs_stack_serially(self):
        tel = RunTelemetry()
        system = make_system(telemetry=tel)
        gen = ReadPairGenerator(length=50, error_rate=0.04, seed=2)
        first = system.align(gen.pairs(8))
        system.align(gen.pairs(8))
        (second,) = tel.profiler.spans("run", run=1)
        assert second.model_start == pytest.approx(first.total_seconds)
        assert tel.model_seconds_total == pytest.approx(
            sum(s.result.total_seconds for s in tel.segments)
        )

    def test_segment_keeps_merged_trace(self):
        tel, _run = aligned_telemetry()
        (seg,) = tel.segments
        assert seg.trace.dpus_traced() == [0, 1, 2, 3]
        assert seg.seconds_per_cycle > 0


class TestMetrics:
    def test_run_counters(self):
        tel, run = aligned_telemetry(pairs=10)
        reg = tel.registry
        assert reg.get("pim_runs_total").value(kind="align") == 1
        assert reg.get("pim_pairs_total").value(kind="align") == 10
        assert reg.get("pim_model_bytes_total").value(direction="to_dpu") == run.bytes_in

    def test_worker_metrics_absorbed(self):
        tel, run = aligned_telemetry(pairs=10)
        reg = tel.registry
        per_dpu = reg.get("pim_dpu_pairs_total")
        assert per_dpu is not None
        assert sum(
            per_dpu.value(dpu=str(d)) for d in range(4)
        ) == run.pairs_simulated
        transfer = reg.get("pim_transfer_bytes_total")
        assert transfer.value(direction="to_dpu") == run.bytes_in

    def test_section_seconds_match_model(self):
        tel, run = aligned_telemetry()
        fam = tel.registry.get("pim_model_seconds_total")
        assert fam.value(section="kernel") == pytest.approx(run.kernel_seconds)
        assert fam.value(section="launch") == pytest.approx(run.launch_seconds)


class TestReconcile:
    @pytest.mark.parametrize("workers", [0, 1, 3])
    def test_reconciles_for_any_worker_count(self, workers):
        tel, _run = aligned_telemetry(workers=workers)
        summary = tel.reconcile()
        assert summary["runs"] == 1
        assert summary["model_seconds"] == pytest.approx(tel.model_seconds_total)

    def test_model_run_reconciles(self):
        tel = RunTelemetry()
        system = make_system(num_dpus=8, telemetry=tel)
        system.model_run(
            DatasetSpec(num_pairs=64, length=50, error_rate=0.04, seed=5),
            sample_pairs_per_dpu=4,
        )
        assert tel.reconcile()["runs"] == 1

    def test_scheduler_rounds_reconcile(self):
        tel = RunTelemetry()
        system = make_system(telemetry=tel)
        pairs = ReadPairGenerator(length=50, error_rate=0.02, seed=8).pairs(18)
        BatchScheduler(system).run(pairs, pairs_per_round=8)
        assert tel.reconcile()["runs"] == 3
        assert tel.registry.get("pim_scheduler_rounds_total").value() == 3
        assert len(tel.profiler.spans("scheduler_round")) == 3

    def test_drift_raises(self):
        tel, _run = aligned_telemetry()
        (rec,) = tel.profiler.spans("launch", run=0)
        rec.model_seconds += 1e-3  # tamper with one section span
        with pytest.raises(TelemetryError, match="reconciliation failed"):
            tel.reconcile()


class TestParallelEquivalence:
    """workers>1 must yield byte-identical telemetry to workers=1."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_registry_and_trace_identical(self, workers):
        seq, _ = aligned_telemetry(workers=1, pairs=14, seed=7)
        par, _ = aligned_telemetry(workers=workers, pairs=14, seed=7)
        assert seq.registry.render_prometheus() == par.registry.render_prometheus()
        assert seq.registry.snapshot() == par.registry.snapshot()
        assert seq.segments[0].trace.events == par.segments[0].trace.events

    def test_chrome_trace_identical(self):
        seq, _ = aligned_telemetry(workers=1, pairs=12, seed=9)
        par, _ = aligned_telemetry(workers=3, pairs=12, seed=9)
        assert json.dumps(to_chrome_trace(seq), sort_keys=True) == json.dumps(
            to_chrome_trace(par), sort_keys=True
        )

    def test_model_spans_identical(self):
        seq, _ = aligned_telemetry(workers=1, pairs=12, seed=9)
        par, _ = aligned_telemetry(workers=2, pairs=12, seed=9)

        def model_view(tel):
            return [
                (r.name, r.labels, r.model_start, r.model_seconds)
                for r in tel.profiler.records
                if r.model_seconds is not None
            ]

        assert model_view(seq) == model_view(par)


class TestDocuments:
    def test_run_rows_shape(self):
        tel, run = aligned_telemetry()
        (row,) = tel.run_rows()
        assert row["type"] == "run"
        assert row["kind"] == "align"
        assert row["total_seconds"] == run.total_seconds
        assert row["trace_events"] == len(tel.segments[0].trace.events)

    def test_metrics_document_json_serializable(self):
        tel, _run = aligned_telemetry()
        doc = tel.metrics_document()
        assert doc["schema"] == "repro.obs/v1"
        json.dumps(doc)  # must not raise


class TestVectorEngineEquivalence:
    """The vector engine default must not perturb the telemetry surface:
    scalar and vector runs produce byte-identical modeled telemetry, at
    every worker count."""

    @pytest.mark.parametrize("workers", [0, 1, 3])
    def test_vector_matches_scalar_telemetry(self, workers):
        scalar, _ = aligned_telemetry(
            workers=workers, pairs=14, seed=7, engine="scalar"
        )
        vector, _ = aligned_telemetry(
            workers=workers, pairs=14, seed=7, engine="vector"
        )
        assert (
            scalar.registry.render_prometheus()
            == vector.registry.render_prometheus()
        )
        assert scalar.registry.snapshot() == vector.registry.snapshot()
        assert (
            scalar.segments[0].trace.events == vector.segments[0].trace.events
        )
        assert json.dumps(
            to_chrome_trace(scalar), sort_keys=True
        ) == json.dumps(to_chrome_trace(vector), sort_keys=True)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_vector_engine_parallel_equivalence(self, workers):
        base, _ = aligned_telemetry(
            workers=0, pairs=14, seed=7, engine="vector"
        )
        par, _ = aligned_telemetry(
            workers=workers, pairs=14, seed=7, engine="vector"
        )
        assert (
            base.registry.render_prometheus()
            == par.registry.render_prometheus()
        )
        assert base.registry.snapshot() == par.registry.snapshot()
        assert json.dumps(to_chrome_trace(base), sort_keys=True) == json.dumps(
            to_chrome_trace(par), sort_keys=True
        )
