"""Tests for the energy model."""

import pytest

from repro.cpu.model import CpuTimeBreakdown
from repro.errors import ConfigError
from repro.perf.energy import EnergyModel
from repro.pim.system import PimRunResult


def cpu_breakdown(seconds: float, threads: int = 56) -> CpuTimeBreakdown:
    return CpuTimeBreakdown(
        threads=threads, compute_seconds=seconds / 2, memory_seconds=seconds
    )


def pim_run(kernel_s: float, xfer_s: float) -> PimRunResult:
    return PimRunResult(
        num_pairs=5_000_000,
        pairs_simulated=100,
        tasklets=16,
        metadata_policy="mram",
        kernel_seconds=kernel_s,
        transfer_in_seconds=xfer_s * 0.7,
        transfer_out_seconds=xfer_s * 0.3,
        launch_seconds=0.0,
        bytes_in=0,
        bytes_out=0,
    )


class TestCpuEnergy:
    def test_power_times_time(self):
        model = EnergyModel(cpu_busy_watts=200)
        e = model.cpu_energy(cpu_breakdown(2.0))
        assert e.total_joules == pytest.approx(400.0)

    def test_label(self):
        assert EnergyModel().cpu_energy(cpu_breakdown(1.0)).label == "cpu-56T"


class TestPimEnergy:
    def test_phases_sum(self):
        model = EnergyModel()
        e = model.pim_energy(pim_run(kernel_s=0.1, xfer_s=0.2))
        assert e.total_joules == pytest.approx(sum(e.phases.values()))
        assert set(e.phases) == {
            "kernel (DIMMs busy)",
            "kernel (host orchestrating)",
            "transfers (host busy)",
            "transfers (DIMMs idle)",
        }

    def test_kernel_phase_dominated_by_dimm_power(self):
        model = EnergyModel()
        e = model.pim_energy(pim_run(kernel_s=1.0, xfer_s=0.0))
        assert e.phases["kernel (DIMMs busy)"] == pytest.approx(23.22 * 20)

    def test_longer_kernel_more_energy(self):
        model = EnergyModel()
        e1 = model.pim_energy(pim_run(0.1, 0.2)).total_joules
        e2 = model.pim_energy(pim_run(0.2, 0.2)).total_joules
        assert e2 > e1


class TestEfficiency:
    def test_gain_direction(self):
        """PIM at Fig. 1's operating point should win on energy."""
        model = EnergyModel()
        gain = model.efficiency_gain(
            cpu_breakdown(1.2), pim_run(kernel_s=0.033, xfer_s=0.21), 5_000_000
        )
        assert gain > 4.0

    def test_pairs_per_joule(self):
        model = EnergyModel(cpu_busy_watts=100)
        e = model.cpu_energy(cpu_breakdown(1.0))
        assert e.pairs_per_joule(1000) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            EnergyModel(cpu_busy_watts=0).validate()
        with pytest.raises(ConfigError):
            EnergyModel(num_dimms=0).validate()
