"""Hypothesis differential test: PIM kernel == host WavefrontAligner.

For any `similar_pair` input, the simulated DPU kernel must produce the
**same score and the same CIGAR string** as the host aligner, under edit
and affine penalties, at 1, 8, and 24 tasklets (the paper's interesting
thread counts: serial, sweet spot, maximum).

Budget constraints are deliberate: `max_edits=4` with reads <= 48 bases
keeps the affine kernel inside its 64 KB WRAM slice even at 24 tasklets
(the admission math in ``WfaDpuKernel.plan_wram``), so every generated
pair is admissible and a kernel rejection is a real bug.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from conftest import similar_pair
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.data.generator import ReadPair
from repro.pim.config import PimSystemConfig
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem

MAX_LEN = 48
MAX_EDITS = 4

PENALTY_MODELS = [
    pytest.param(EditPenalties(), id="edit"),
    pytest.param(AffinePenalties(mismatch=4, gap_open=6, gap_extend=2), id="affine"),
]
TASKLET_COUNTS = (1, 8, 24)

_SYSTEMS: dict = {}


def system_for(penalties, tasklets: int) -> PimSystem:
    """One cached system per (penalties, tasklets) — cheap per example."""
    key = (repr(penalties), tasklets)
    if key not in _SYSTEMS:
        _SYSTEMS[key] = PimSystem(
            PimSystemConfig(
                num_dpus=1, num_ranks=1, tasklets=tasklets, num_simulated_dpus=1
            ),
            kernel_config=KernelConfig(
                penalties=penalties, max_read_len=MAX_LEN, max_edits=MAX_EDITS
            ),
        )
    return _SYSTEMS[key]


@pytest.mark.parametrize("penalties", PENALTY_MODELS)
@pytest.mark.parametrize("tasklets", TASKLET_COUNTS)
@settings(max_examples=40, deadline=None)
@given(pair=similar_pair(max_len=MAX_LEN, max_edits=MAX_EDITS))
def test_kernel_matches_host_aligner(penalties, tasklets, pair):
    pattern, text = pair
    run = system_for(penalties, tasklets).align(
        [ReadPair(pattern, text)], collect_results=True
    )
    assert len(run.results) == 1
    _, score, cigar = run.results[0]

    host = WavefrontAligner(penalties).align(pattern, text)
    assert score == host.score
    assert str(cigar) == str(host.cigar)
    # and the CIGAR replays + re-scores, independently of the host answer
    cigar.validate(pattern, text)
    assert cigar.score(penalties) == score


@pytest.mark.parametrize("penalties", PENALTY_MODELS)
@settings(max_examples=25, deadline=None)
@given(pair=similar_pair(max_len=MAX_LEN, max_edits=MAX_EDITS))
def test_tasklet_count_never_changes_the_answer(penalties, pair):
    """The same pair through 1/8/24 tasklets is bit-identical."""
    pattern, text = pair
    answers = {
        tasklets: [
            (s, str(c))
            for _, s, c in system_for(penalties, tasklets)
            .align([ReadPair(pattern, text)], collect_results=True)
            .results
        ]
        for tasklets in TASKLET_COUNTS
    }
    assert answers[1] == answers[8] == answers[24]
