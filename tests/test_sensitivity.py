"""Unit tests for the calibration sensitivity analysis."""

import pytest

from repro.experiments.sensitivity import SensitivityPoint, sensitivity_analysis


@pytest.fixture(scope="module")
def result():
    return sensitivity_analysis(factor=1.5, cpu_sample=60, pim_sample=16)


class TestStructure:
    def test_baseline_plus_eight_points(self, result):
        # 4 knobs x 2 directions
        assert len(result.points) == 8
        labels = {p.label for p in result.points}
        assert "DMA setup cycles x1.5" in labels
        assert "CPU effective bandwidth /1.5" in labels

    def test_report_renders(self, result):
        text = result.report()
        assert "baseline" in text
        assert "sensitivity" in text

    def test_all_points_positive(self, result):
        for p in [result.baseline] + result.points:
            assert p.total_speedup > 0
            assert p.kernel_speedup > p.total_speedup  # transfers always cost


class TestDirections:
    def test_pim_always_wins_at_modest_perturbation(self, result):
        assert result.all_pim_wins()

    def test_cpu_bandwidth_moves_both_ratios(self, result):
        by = {p.label: p for p in result.points}
        up = by["CPU effective bandwidth x1.5"]
        down = by["CPU effective bandwidth /1.5"]
        # faster CPU -> smaller PIM advantage, and vice versa
        assert up.total_speedup < result.baseline.total_speedup < down.total_speedup
        assert up.kernel_speedup < result.baseline.kernel_speedup < down.kernel_speedup

    def test_transfer_bandwidth_only_moves_total(self, result):
        by = {p.label: p for p in result.points}
        up = by["host transfer bandwidth x1.5"]
        assert up.total_speedup > result.baseline.total_speedup
        assert up.kernel_speedup == pytest.approx(
            result.baseline.kernel_speedup, rel=0.01
        )

    def test_point_dataclass(self):
        p = SensitivityPoint("x", 2.0, 10.0)
        assert p.total_speedup == 2.0
