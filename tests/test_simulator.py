"""Tests for the reference-based read simulator."""

import pytest

from repro.baselines.bitparallel import levenshtein_dp
from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties
from repro.core.span import AlignmentSpan
from repro.data.simulator import ReferenceSampler
from repro.data.seqtools import reverse_complement
from repro.errors import DataError


class TestSampling:
    def test_deterministic(self):
        a = ReferenceSampler(seed=5, reference_length=2000).reads(5)
        b = ReferenceSampler(seed=5, reference_length=2000).reads(5)
        assert a == b

    def test_read_provenance(self):
        sampler = ReferenceSampler(
            seed=6, reference_length=5000, read_length=80, error_rate=0.05
        )
        for read in sampler.reads(20):
            assert 0 <= read.position <= 5000 - 80
            assert read.errors == 4
            fragment = sampler.reference[read.position : read.position + 80]
            query = sampler.oriented_query(read)
            assert levenshtein_dp(fragment, query) <= read.errors

    def test_forward_only(self):
        sampler = ReferenceSampler(
            seed=7, reference_length=1000, reverse_strand_fraction=0.0
        )
        assert all(not r.reverse for r in sampler.reads(10))

    def test_reverse_only_roundtrip(self):
        sampler = ReferenceSampler(
            seed=8,
            reference_length=1000,
            reverse_strand_fraction=1.0,
            error_rate=0.0,
        )
        read = sampler.read()
        assert read.reverse
        fragment = sampler.reference[read.position : read.position + 100]
        assert reverse_complement(read.sequence) == fragment

    def test_validation(self):
        with pytest.raises(DataError):
            ReferenceSampler(reference="ACGT", read_length=10)
        with pytest.raises(DataError):
            ReferenceSampler(read_length=0)
        with pytest.raises(DataError):
            ReferenceSampler(error_rate=2.0)
        with pytest.raises(DataError):
            ReferenceSampler(reverse_strand_fraction=-0.1)
        with pytest.raises(DataError):
            ReferenceSampler(reference_length=500).reads(-1)

    def test_window_extraction(self):
        sampler = ReferenceSampler(seed=9, reference_length=3000, read_length=60)
        read = sampler.read()
        window, offset = read.window(sampler.reference, flank=20)
        assert window in sampler.reference
        assert (
            sampler.reference[read.position : read.position + 60]
            == window[offset : offset + 60]
        )


class TestEndToEndMapping:
    def test_semiglobal_alignment_recovers_positions(self):
        """The full mapping loop: sample, window, ends-free align."""
        pen = AffinePenalties()
        sampler = ReferenceSampler(
            seed=10, reference_length=8000, read_length=70, error_rate=0.03
        )
        aligner = WavefrontAligner(pen, span=AlignmentSpan.semiglobal())
        hits = 0
        for read in sampler.reads(25):
            query = sampler.oriented_query(read)
            window, offset = read.window(sampler.reference, flank=25)
            res = aligner.align(query, window)
            if abs(res.text_start - offset) <= sampler.edit_budget:
                hits += 1
        assert hits >= 23  # allow a couple of repetitive-context misses
