"""Golden regression tests: pinned outputs for fixed seeds.

These freeze the observable behaviour of the generator and the aligners
on a small fixed workload.  If an intentional algorithm change breaks
them, update the constants alongside the change — any *unintentional*
diff here is a regression in determinism or scoring.
"""

from repro.core.aligner import WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.data.generator import ReadPairGenerator

PEN = AffinePenalties(4, 6, 2)

# First 3 pairs of ReadPairGenerator(length=20, error_rate=0.1, seed=42).
GOLDEN_PAIRS = [
    ("AAGCCCAATAAACCACTCTG", "AAGCCTAATAGAACCACTCTG"),
    ("CCGAATAGGGATATAGGCAA", "CCCGAATAGGATATAGGCAA"),
    ("ATGTGCGGCGACCCTTGCGA", "ACGTGCGGACGACCCTTGCGA"),
]

# Affine (4, 6, 2) scores and CIGARs for those pairs.
GOLDEN_AFFINE = [
    (12, "5M1X4M1I10M"),
    (16, "2M1I7M1D10M"),
    (12, "1M1X6M1I12M"),
]
GOLDEN_EDIT = [2, 2, 2]


def test_generator_stream_is_pinned():
    gen = ReadPairGenerator(length=20, error_rate=0.1, seed=42)
    got = [(p.pattern, p.text) for p in gen.pairs(3)]
    assert got == GOLDEN_PAIRS


def test_affine_scores_and_cigars_pinned():
    aligner = WavefrontAligner(PEN)
    for (p, t), (score, cigar) in zip(GOLDEN_PAIRS, GOLDEN_AFFINE):
        r = aligner.align(p, t)
        assert r.score == score
        assert str(r.cigar) == cigar


def test_edit_scores_pinned():
    aligner = WavefrontAligner(EditPenalties())
    for (p, t), score in zip(GOLDEN_PAIRS, GOLDEN_EDIT):
        assert aligner.score(p, t) == score


def test_counter_determinism_pinned():
    """Operation counts are part of the measurement contract."""
    r = WavefrontAligner(PEN).align(*GOLDEN_PAIRS[1])
    again = WavefrontAligner(PEN).align(*GOLDEN_PAIRS[1])
    assert r.counters.cells_computed == again.counters.cells_computed
    assert r.counters.extend_steps == again.counters.extend_steps
    assert r.counters.wavefront_log == again.counters.wavefront_log
