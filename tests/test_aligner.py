"""Tests for the public WavefrontAligner API."""

import pytest

from repro.core.aligner import AlignmentResult, WavefrontAligner
from repro.core.penalties import AffinePenalties, EditPenalties
from repro.errors import AlignmentError, PenaltyError

PEN = AffinePenalties(4, 6, 2)


class TestApi:
    def test_docstring_example(self):
        aligner = WavefrontAligner(AffinePenalties(mismatch=4, gap_open=6, gap_extend=2))
        result = aligner.align("GATTACA", "GATCACA")
        assert result.score == 4
        assert str(result.cigar) == "3M1X3M"

    def test_default_penalties_are_affine(self):
        al = WavefrontAligner()
        assert isinstance(al.penalties, AffinePenalties)

    def test_bytes_input_accepted(self):
        r = WavefrontAligner(PEN).align(b"ACGT", b"ACGT")
        assert r.score == 0

    def test_mixed_input_accepted(self):
        assert WavefrontAligner(PEN).align(b"ACGT", "ACGT").score == 0

    def test_non_sequence_rejected(self):
        with pytest.raises(AlignmentError):
            WavefrontAligner(PEN).align(123, "ACGT")
        with pytest.raises(AlignmentError):
            WavefrontAligner(PEN).align("ACGT", ["A"])

    def test_score_only_has_no_cigar(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACTT", score_only=True)
        assert r.cigar is None
        assert r.score == 4

    def test_score_convenience(self):
        assert WavefrontAligner(PEN).score("ACGT", "ACTT") == 4

    def test_result_metadata(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACGGT")
        assert r.pattern_len == 4
        assert r.text_len == 5
        assert r.penalties == PEN
        assert r.exact

    def test_max_score_cap_propagates(self):
        al = WavefrontAligner(PEN, max_score=2)
        with pytest.raises(AlignmentError):
            al.align("AAAA", "TTTT")

    def test_validate_mode(self):
        al = WavefrontAligner(PEN, validate=True)
        r = al.align("ACGTACGTAC", "ACGTTACGAC")
        assert r.cigar.score(PEN) == r.score

    def test_reusable_across_pairs(self):
        al = WavefrontAligner(EditPenalties())
        assert al.score("AC", "AC") == 0
        assert al.score("AC", "AG") == 1
        assert al.score("", "AG") == 2


class TestAlignmentResult:
    def test_identity(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACTT")
        assert r.identity() == pytest.approx(3 / 4)

    def test_identity_empty(self):
        r = WavefrontAligner(PEN).align("", "")
        assert r.identity() == 1.0

    def test_identity_requires_cigar(self):
        r = WavefrontAligner(PEN).align("ACGT", "ACTT", score_only=True)
        with pytest.raises(AlignmentError):
            r.identity()

    def test_counters_attached(self):
        r = WavefrontAligner(PEN).align("ACGTACGT", "ACTTACGT")
        assert r.counters.cells_computed > 0
        assert r.counters.backtrace_ops == r.cigar.columns()
