"""Tests for the DMA engine and UPMEM's alignment/size restrictions."""

import pytest

from repro.errors import AlignmentFault
from repro.pim.config import DpuTimingConfig
from repro.pim.dma import DMA_MAX, DmaEngine, aligned_size
from repro.pim.memory import Mram, Wram


@pytest.fixture
def dma():
    return DmaEngine(Mram(1 << 20), Wram(), DpuTimingConfig())


class TestAlignedSize:
    def test_rounding(self):
        assert aligned_size(1) == 8
        assert aligned_size(8) == 8
        assert aligned_size(9) == 16
        assert aligned_size(0) == 0


class TestRestrictions:
    def test_unaligned_mram_address(self, dma):
        with pytest.raises(AlignmentFault, match="MRAM address"):
            dma.read(4, 0, 8)

    def test_unaligned_wram_address(self, dma):
        with pytest.raises(AlignmentFault, match="WRAM address"):
            dma.read(0, 4, 8)

    def test_size_not_multiple_of_8(self, dma):
        with pytest.raises(AlignmentFault, match="size"):
            dma.read(0, 0, 12)

    def test_size_below_minimum(self, dma):
        with pytest.raises(AlignmentFault):
            dma.read(0, 0, 0)

    def test_size_above_maximum(self, dma):
        with pytest.raises(AlignmentFault):
            dma.read(0, 0, DMA_MAX + 8)

    def test_max_size_allowed(self, dma):
        dma.read(0, 0, DMA_MAX)


class TestFunctionalTransfer:
    def test_read_moves_bytes(self, dma):
        dma.mram.write(64, b"A" * 16)
        dma.read(64, 8, 16)
        assert dma.wram.read(8, 16) == b"A" * 16

    def test_write_moves_bytes(self, dma):
        dma.wram.write(0, b"B" * 8)
        dma.write(0, 128, 8)
        assert dma.mram.read(128, 8) == b"B" * 8

    def test_accounting(self, dma):
        dma.read(0, 0, 16)
        dma.write(0, 64, 8)
        assert dma.transfers == 2
        assert dma.bytes_moved == 24
        assert dma.cycles > 0
        dma.reset_counters()
        assert dma.transfers == 0 and dma.cycles == 0.0


class TestTiming:
    def test_cycles_match_model(self, dma):
        t = DpuTimingConfig()
        c = dma.read(0, 0, 64)
        assert c == pytest.approx(t.dma_setup_cycles + 8 * t.dma_cycles_per_8b)

    def test_larger_transfers_cost_more(self, dma):
        small = dma.read(0, 0, 8)
        large = dma.read(0, 0, 2048)
        assert large > small

    def test_streaming_bandwidth_near_prim(self):
        # Asymptotic streaming bandwidth should be in PrIM's ~630 MB/s range.
        t = DpuTimingConfig()
        nbytes = 1 << 20
        cycles = (nbytes / 2048) * t.dma_cycles(2048)
        bw = nbytes / t.seconds(cycles)
        assert 0.5e9 < bw < 0.75e9


class TestLargeTransfers:
    def test_read_large_chunks(self, dma):
        dma.mram.write(0, bytes(range(256)) * 20)  # 5120 bytes
        cycles = dma.read_large(0, 0, 5120)
        assert dma.wram.read(0, 5120) == bytes(range(256)) * 20
        assert dma.transfers == 3  # 2048 + 2048 + 1024
        assert cycles == dma.cycles

    def test_write_large_chunks(self, dma):
        dma.wram.write(0, b"C" * 4096)
        dma.write_large(0, 8192, 4096)
        assert dma.mram.read(8192, 4096) == b"C" * 4096
        assert dma.transfers == 2

    def test_large_requires_8_multiple(self, dma):
        with pytest.raises(AlignmentFault):
            dma.read_large(0, 0, 20)
        with pytest.raises(AlignmentFault):
            dma.write_large(0, 0, 12)

    def test_large_respects_bounds(self, dma):
        with pytest.raises(Exception):
            dma.read_large(0, 64 * 1024 - 8, 64)  # overflows WRAM
