"""Tests for the full PIM system orchestration."""

import math

import pytest

from repro.baselines.gotoh import gotoh_score
from repro.core.penalties import AffinePenalties
from repro.data.datasets import DatasetSpec
from repro.data.generator import ReadPairGenerator
from repro.errors import ConfigError
from repro.pim.config import PimSystemConfig, upmem_paper_system, upmem_single_rank
from repro.pim.kernel import KernelConfig
from repro.pim.system import PimSystem

PEN = AffinePenalties(4, 6, 2)


def small_system(**kw) -> PimSystem:
    cfg = PimSystemConfig(
        num_dpus=4, num_ranks=1, tasklets=4, num_simulated_dpus=4, **kw
    )
    kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=3)
    return PimSystem(cfg, kc)


class TestAlignBatch:
    def test_functional_results_correct(self):
        system = small_system()
        pairs = ReadPairGenerator(length=60, error_rate=0.05, seed=1).pairs(30)
        res = system.align(pairs)
        assert res.pairs_simulated == 30
        assert len(res.results) == 30
        seen = set()
        for idx, score, cigar in res.results:
            assert idx not in seen
            seen.add(idx)
            pair = pairs[idx]
            assert score == gotoh_score(pair.pattern, pair.text, PEN)
            cigar.validate(pair.pattern, pair.text)
        assert seen == set(range(30))

    def test_round_robin_distribution(self):
        system = small_system()
        pairs = ReadPairGenerator(length=60, error_rate=0.0, seed=2).pairs(10)
        res = system.align(pairs)
        # 10 pairs over 4 DPUs: loads 3,3,2,2
        loads = sorted((d.pairs_done for d in res.per_dpu), reverse=True)
        assert loads == [3, 3, 2, 2]

    def test_kernel_time_is_max_over_dpus(self):
        system = small_system()
        pairs = ReadPairGenerator(length=60, error_rate=0.05, seed=3).pairs(16)
        res = system.align(pairs)
        assert res.kernel_seconds == pytest.approx(
            max(d.seconds for d in res.per_dpu)
        )

    def test_timing_components_positive(self):
        system = small_system()
        pairs = ReadPairGenerator(length=60, error_rate=0.02, seed=4).pairs(8)
        res = system.align(pairs)
        assert res.kernel_seconds > 0
        assert res.transfer_in_seconds > 0
        assert res.transfer_out_seconds > 0
        assert res.total_seconds == pytest.approx(
            res.kernel_seconds
            + res.transfer_in_seconds
            + res.transfer_out_seconds
            + res.launch_seconds
        )
        assert res.throughput() > 0
        assert res.kernel_throughput() > res.throughput()

    def test_empty_batch(self):
        system = small_system()
        res = system.align([])
        assert res.pairs_simulated == 0
        assert res.kernel_seconds == 0.0
        assert res.dominant_bound() == "none"

    def test_verify_mode_passes_on_good_results(self):
        system = small_system()
        pairs = ReadPairGenerator(length=60, error_rate=0.04, seed=44).pairs(12)
        res = system.align(pairs, verify=True)
        assert res.pairs_simulated == 12

    def test_verify_mode_works_without_collect(self):
        system = small_system()
        pairs = ReadPairGenerator(length=60, error_rate=0.02, seed=45).pairs(6)
        res = system.align(pairs, collect_results=False, verify=True)
        assert res.pairs_simulated == 6

    def test_collect_results_optional(self):
        system = small_system()
        pairs = ReadPairGenerator(length=60, error_rate=0.02, seed=5).pairs(6)
        res = system.align(pairs, collect_results=False)
        assert res.results == []
        assert res.pairs_simulated == 6


class TestModelRun:
    def test_scale_factor(self):
        cfg = upmem_paper_system(num_simulated_dpus=1)
        kc = KernelConfig(penalties=PEN, max_read_len=100, max_edits=2)
        system = PimSystem(cfg, kc)
        spec = DatasetSpec(num_pairs=1_000_000, length=100, error_rate=0.02)
        res = system.model_run(spec, sample_pairs_per_dpu=16)
        load = math.ceil(1_000_000 / 2560)
        # the sample is rounded up to 2 pairs/tasklet (16 tasklets -> 32)
        k = max(16, 2 * cfg.tasklets)
        assert res.scale_factor == pytest.approx(load / k)
        assert res.num_pairs == 1_000_000
        assert res.pairs_simulated == k

    def test_full_load_sample_not_scaled(self):
        cfg = PimSystemConfig(num_dpus=64, num_ranks=1, tasklets=4, num_simulated_dpus=1)
        kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=1)
        system = PimSystem(cfg, kc)
        spec = DatasetSpec(num_pairs=640, length=50, error_rate=0.02)
        res = system.model_run(spec, sample_pairs_per_dpu=1000)
        assert res.scale_factor == 1.0
        assert res.pairs_simulated == 10  # ceil(640/64)

    def test_transfer_bytes_cover_whole_workload(self):
        cfg = upmem_paper_system(num_simulated_dpus=1)
        kc = KernelConfig(penalties=PEN, max_read_len=100, max_edits=2)
        system = PimSystem(cfg, kc)
        spec = DatasetSpec(num_pairs=5_000_000, length=100, error_rate=0.02)
        res = system.model_run(spec, sample_pairs_per_dpu=8)
        layout = system.plan_layout(8)
        assert res.bytes_in == 5_000_000 * layout.input_record_size + 2560 * 64
        assert res.bytes_out == 5_000_000 * layout.result_record_size

    def test_collect_results_functional(self):
        cfg = PimSystemConfig(num_dpus=8, num_ranks=1, tasklets=2, num_simulated_dpus=2)
        kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=2)
        system = PimSystem(cfg, kc)
        spec = DatasetSpec(num_pairs=64, length=50, error_rate=0.04)
        res = system.model_run(spec, sample_pairs_per_dpu=4, collect_results=True)
        assert len(res.results) == 8  # 2 DPUs x 4 sample pairs
        for _idx, score, cigar in res.results:
            assert cigar is not None
            assert score >= 0

    def test_collect_results_follows_round_robin_index_contract(self):
        """Regression: model_run must label results ``d + local * num_dpus``
        (the contract align uses) and populate ``regions`` — it used to
        emit ``d * k + local`` and leave regions empty."""
        cfg = PimSystemConfig(num_dpus=8, num_ranks=1, tasklets=2, num_simulated_dpus=2)
        kc = KernelConfig(penalties=PEN, max_read_len=50, max_edits=2)
        system = PimSystem(cfg, kc)
        spec = DatasetSpec(num_pairs=64, length=50, error_rate=0.04)
        res = system.model_run(spec, sample_pairs_per_dpu=4, collect_results=True)
        # k = 4 sample pairs on each of 2 simulated DPUs
        indices = [i for i, _s, _c in res.results]
        assert sorted(indices) == sorted(
            d + local * 8 for d in range(2) for local in range(4)
        )
        assert set(res.regions) == set(indices)
        for start in res.regions.values():
            assert start == (0, 0)  # global alignment: no clipping

    def test_invalid_sample_size(self):
        system = small_system()
        with pytest.raises(ConfigError):
            system.model_run(
                DatasetSpec(num_pairs=10, length=50, error_rate=0.0),
                sample_pairs_per_dpu=0,
            )

    def test_empty_spec_rejected(self):
        system = small_system()
        with pytest.raises(ConfigError):
            system.model_run(DatasetSpec(num_pairs=0, length=50, error_rate=0.0))


class TestPolicies:
    def test_wram_policy_works_at_low_tasklets(self):
        cfg = PimSystemConfig(
            num_dpus=2,
            num_ranks=1,
            tasklets=2,
            num_simulated_dpus=2,
            metadata_policy="wram",
        )
        kc = KernelConfig(penalties=PEN, max_read_len=60, max_edits=2)
        system = PimSystem(cfg, kc)
        pairs = ReadPairGenerator(length=60, error_rate=0.02, seed=6).pairs(8)
        res = system.align(pairs)
        assert res.metadata_policy == "wram"
        for idx, score, _ in res.results:
            assert score == gotoh_score(pairs[idx].pattern, pairs[idx].text, PEN)

    def test_admission_failure_at_construction(self):
        from repro.errors import KernelError

        cfg = PimSystemConfig(
            num_dpus=2,
            num_ranks=1,
            tasklets=24,
            num_simulated_dpus=2,
            metadata_policy="wram",
        )
        kc = KernelConfig(penalties=PEN, max_read_len=100, max_edits=4)
        with pytest.raises(KernelError):
            PimSystem(cfg, kc)
