"""Tests for sequence utilities."""

import pytest
from hypothesis import given, settings

from repro.data.seqtools import (
    gc_content,
    hamming_distance,
    kmer_counts,
    reverse_complement,
    validate_alphabet,
)
from repro.errors import DataError

from conftest import dna_seq


class TestReverseComplement:
    def test_known(self):
        assert reverse_complement("ACGT") == "ACGT"  # palindrome
        assert reverse_complement("AAGG") == "CCTT"
        assert reverse_complement("") == ""
        assert reverse_complement("ACGN") == "NCGT"

    def test_case_preserved(self):
        assert reverse_complement("acGT") == "ACgt"

    @settings(max_examples=50, deadline=None)
    @given(s=dna_seq)
    def test_involution(self, s):
        assert reverse_complement(reverse_complement(s)) == s

    @settings(max_examples=30, deadline=None)
    @given(s=dna_seq)
    def test_length_preserved(self, s):
        assert len(reverse_complement(s)) == len(s)


class TestGcContent:
    def test_known(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0
        assert gc_content("ACGT") == 0.5
        assert gc_content("") == 0.0
        assert gc_content("acgt") == 0.5

    @settings(max_examples=30, deadline=None)
    @given(s=dna_seq)
    def test_bounds(self, s):
        assert 0.0 <= gc_content(s) <= 1.0


class TestHamming:
    def test_known(self):
        assert hamming_distance("ACGT", "ACGT") == 0
        assert hamming_distance("ACGT", "AGGA") == 2

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            hamming_distance("AC", "ACG")

    @settings(max_examples=30, deadline=None)
    @given(s=dna_seq)
    def test_self_distance_zero(self, s):
        assert hamming_distance(s, s) == 0


class TestKmers:
    def test_known(self):
        counts = kmer_counts("ACACA", 2)
        assert counts["AC"] == 2
        assert counts["CA"] == 2
        assert sum(counts.values()) == 4

    def test_k_longer_than_sequence(self):
        assert kmer_counts("AC", 5) == {}

    def test_invalid_k(self):
        with pytest.raises(DataError):
            kmer_counts("ACGT", 0)


class TestValidateAlphabet:
    def test_accepts_clean(self):
        validate_alphabet("ACGTACGT")

    def test_rejects_foreign(self):
        with pytest.raises(DataError, match="X"):
            validate_alphabet("ACXGT")

    def test_custom_alphabet(self):
        validate_alphabet("0110", alphabet="01")
