"""Import-completeness: every module imports cleanly, every __all__ resolves.

Guards against circular imports and stale re-export lists anywhere in
the package tree (a failure mode the energy/pim cycle demonstrated).
"""

import importlib
import pkgutil

import pytest

import repro


def iter_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(set(iter_modules()))


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", MODULES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_module_count_sanity():
    # the package tree should stay substantial; catches packaging regressions
    assert len(MODULES) > 45, MODULES
